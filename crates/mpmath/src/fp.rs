//! Prime-field GF(p) arithmetic (§2.1.3, §4.2.1).
//!
//! A [`PrimeField`] context fixes the modulus once and precomputes the
//! folding constants used by fast reduction. Elements are fixed-width
//! little-endian limb vectors of `k = ceil(bits/32)` limbs, exactly the
//! in-memory representation of the simulated software suite.
//!
//! Multiplication is operand scanning (Algorithm 2) followed by fast
//! reduction. Reduction exploits the *modular congruency* idea of §4.2.1:
//! every power `2^(32*(k+j))` appearing in the double-width product is
//! congruent to a precomputed k-limb constant, so the high half of the
//! product can be folded back into the low half with `k` multiply-
//! accumulate rows — for the sparse NIST primes these constants have very
//! few non-zero limbs, which is what makes the technique "fast" in the
//! paper. The result is verified against division-based reduction in the
//! test suite.

use crate::mp::{self, Limb, Mp};
use crate::nist::NistPrime;
use std::cmp::Ordering;
use std::fmt;

/// An element of a prime field: exactly `k` little-endian limbs, always
/// fully reduced (`< p`).
///
/// Elements are produced by and consumed by a [`PrimeField`] context; using
/// an element with a field of a different width is a logic error (checked
/// with debug assertions).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FpElement(Vec<Limb>);

impl FpElement {
    /// The little-endian limbs of the element.
    pub fn limbs(&self) -> &[Limb] {
        &self.0
    }

    /// Converts to an arbitrary-precision integer.
    pub fn to_mp(&self) -> Mp {
        Mp::from_limbs(&self.0)
    }

    /// Returns `true` if this is the zero element.
    pub fn is_zero(&self) -> bool {
        mp::is_zero(&self.0)
    }

    /// Returns bit `i` of the canonical representative.
    pub fn bit(&self, i: usize) -> bool {
        mp::bit(&self.0, i)
    }
}

impl fmt::Debug for FpElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FpElement(0x{})", self.to_mp().to_hex())
    }
}

/// A prime-field context: the modulus plus every precomputed constant
/// needed for fast arithmetic.
#[derive(Clone, Debug)]
pub struct PrimeField {
    name: String,
    modulus: Vec<Limb>,
    modulus_mp: Mp,
    k: usize,
    bits: usize,
    /// `fold[j] = 2^(32*(k+j)) mod p` for `j in 0..=k+1`; the extra entries
    /// let [`PrimeField::reduce_wide`] fold its own (k+2)-limb accumulator.
    fold: Vec<Vec<Limb>>,
    /// `2^bits mod p`, for the bit-granular reduction tail.
    two_b: Mp,
}

impl PrimeField {
    /// Creates a field for one of the NIST primes of the study.
    pub fn nist(p: NistPrime) -> Self {
        Self::new(p.name(), &p.modulus())
    }

    /// Creates a field for an arbitrary odd prime modulus.
    ///
    /// The primality of `modulus` is the caller's responsibility (the
    /// ECDSA group orders, for instance, are validated once at curve
    /// construction). Used for protocol arithmetic modulo the group order
    /// `n` (§4.1), which is *not* a fast-reduction prime.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 3` or `modulus` is even.
    pub fn new(name: &str, modulus: &Mp) -> Self {
        assert!(modulus.bit_len() >= 2, "modulus too small");
        assert!(modulus.bit(0), "modulus must be odd");
        let bits = modulus.bit_len();
        let k = bits.div_ceil(32);
        let mut fold = Vec::with_capacity(k + 2);
        for j in 0..k + 2 {
            let c = Mp::one().shl(32 * (k + j)).rem(modulus);
            fold.push(c.to_limbs(k));
        }
        let two_b = Mp::one().shl(bits).rem(modulus);
        PrimeField {
            name: name.to_owned(),
            modulus: modulus.to_limbs(k),
            modulus_mp: modulus.clone(),
            k,
            bits,
            fold,
            two_b,
        }
    }

    /// The field's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The modulus.
    pub fn modulus(&self) -> &Mp {
        &self.modulus_mp
    }

    /// Modulus as `k` little-endian limbs.
    pub fn modulus_limbs(&self) -> &[Limb] {
        &self.modulus
    }

    /// Element width in limbs (`k = ceil(bits/32)`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Modulus bit length.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The zero element.
    pub fn zero(&self) -> FpElement {
        FpElement(vec![0; self.k])
    }

    /// The one element.
    pub fn one(&self) -> FpElement {
        self.from_u64(1)
    }

    /// Embeds a small integer.
    pub fn from_u64(&self, v: u64) -> FpElement {
        self.from_mp(&Mp::from_u64(v))
    }

    /// Reduces an arbitrary integer into the field.
    pub fn from_mp(&self, v: &Mp) -> FpElement {
        FpElement(v.rem(&self.modulus_mp).to_limbs(self.k))
    }

    /// Interprets exactly `k` limbs as an element.
    ///
    /// # Panics
    ///
    /// Panics if `limbs.len() != k` or the value is not fully reduced.
    pub fn from_limbs(&self, limbs: &[Limb]) -> FpElement {
        assert_eq!(limbs.len(), self.k, "element width mismatch");
        assert!(
            mp::cmp(limbs, &self.modulus) == Ordering::Less,
            "element not reduced"
        );
        FpElement(limbs.to_vec())
    }

    /// `a + b mod p` — multi-precision add followed by a conditional
    /// subtraction of the modulus (§4.2.4).
    pub fn add(&self, a: &FpElement, b: &FpElement) -> FpElement {
        self.check(a);
        self.check(b);
        let mut out = vec![0; self.k];
        let carry = mp::add3(&mut out, &a.0, &b.0);
        if carry || mp::cmp(&out, &self.modulus) != Ordering::Less {
            mp::sub_into(&mut out, &self.modulus);
        }
        FpElement(out)
    }

    /// `a - b mod p` — subtraction with a conditional add-back of the
    /// modulus (§4.2.4).
    pub fn sub(&self, a: &FpElement, b: &FpElement) -> FpElement {
        self.check(a);
        self.check(b);
        let mut out = vec![0; self.k];
        let borrow = mp::sub3(&mut out, &a.0, &b.0);
        if borrow {
            mp::add_into(&mut out, &self.modulus);
        }
        FpElement(out)
    }

    /// `-a mod p`.
    pub fn neg(&self, a: &FpElement) -> FpElement {
        if a.is_zero() {
            return self.zero();
        }
        let mut out = vec![0; self.k];
        mp::sub3(&mut out, &self.modulus, &a.0);
        FpElement(out)
    }

    /// `a * b mod p`: operand-scanning multiplication (Algorithm 2) plus
    /// fast reduction.
    pub fn mul(&self, a: &FpElement, b: &FpElement) -> FpElement {
        self.check(a);
        self.check(b);
        let wide = mp::mul_operand_scanning(&a.0, &b.0);
        self.reduce_wide(&wide)
    }

    /// `a^2 mod p`.
    pub fn sqr(&self, a: &FpElement) -> FpElement {
        self.mul(a, a)
    }

    /// Doubles an element (`2a mod p`).
    pub fn dbl(&self, a: &FpElement) -> FpElement {
        self.add(a, a)
    }

    /// Multiplies by a small scalar.
    pub fn mul_u64(&self, a: &FpElement, s: u64) -> FpElement {
        let mut acc = self.zero();
        for i in (0..64 - s.leading_zeros() as usize).rev() {
            acc = self.dbl(&acc);
            if (s >> i) & 1 == 1 {
                acc = self.add(&acc, a);
            }
        }
        acc
    }

    /// Reduces a double-width (`2k`-limb) product into the field by
    /// congruency folding.
    ///
    /// # Panics
    ///
    /// Panics if `wide.len() != 2k`.
    pub fn reduce_wide(&self, wide: &[Limb]) -> FpElement {
        assert_eq!(wide.len(), 2 * self.k, "wide operand width mismatch");
        let k = self.k;
        // Accumulator with two guard limbs: low half + sum of k folded rows.
        let mut acc = vec![0 as Limb; k + 2];
        acc[..k].copy_from_slice(&wide[..k]);
        for j in 0..k {
            let h = wide[k + j];
            if h != 0 {
                let carry = mp::mul_add_limb(&mut acc, &self.fold[j], h);
                debug_assert_eq!(carry, 0, "guard limbs overflowed");
            }
        }
        // Fold the guard limbs themselves, then finish at bit granularity.
        loop {
            let hi0 = acc[k];
            let hi1 = acc[k + 1];
            if hi0 == 0 && hi1 == 0 {
                break;
            }
            acc[k] = 0;
            acc[k + 1] = 0;
            if hi0 != 0 {
                mp::mul_add_limb(&mut acc, &self.fold[0], hi0);
            }
            if hi1 != 0 {
                mp::mul_add_limb(&mut acc, &self.fold[1], hi1);
            }
        }
        let mut v = Mp::from_limbs(&acc[..k]);
        // v < 2^(32k); fold down to < 2^bits, then a final conditional
        // subtraction (at most a few iterations since 2^bits < 2p).
        while v.bit_len() > self.bits {
            let hi = v.shr(self.bits);
            let lo_limbs: Vec<Limb> = {
                let mut t = v.to_limbs(k + 1);
                // mask off bits >= self.bits
                let top = self.bits / 32;
                let rem = self.bits % 32;
                for limb in t.iter_mut().skip(top + 1) {
                    *limb = 0;
                }
                if rem != 0 {
                    t[top] &= (1u32 << rem) - 1;
                } else if top < t.len() {
                    for limb in t.iter_mut().skip(top) {
                        *limb = 0;
                    }
                }
                t
            };
            v = Mp::from_limbs(&lo_limbs).add(&hi.mul(&self.two_b));
        }
        while v >= self.modulus_mp {
            v = v.sub(&self.modulus_mp);
        }
        FpElement(v.to_limbs(k))
    }

    /// `a^e mod p` by left-to-right square-and-multiply.
    pub fn pow(&self, a: &FpElement, e: &Mp) -> FpElement {
        let mut result = self.one();
        for i in (0..e.bit_len()).rev() {
            result = self.sqr(&result);
            if e.bit(i) {
                result = self.mul(&result, a);
            }
        }
        result
    }

    /// Modular inverse by the **binary extended Euclidean algorithm**
    /// (§4.2.4, used on Pete), or `None` for zero.
    pub fn inv(&self, a: &FpElement) -> Option<FpElement> {
        if a.is_zero() {
            return None;
        }
        let p = &self.modulus_mp;
        let mut u = a.to_mp();
        let mut v = p.clone();
        let mut x1 = Mp::one();
        let mut x2 = Mp::zero();
        let one = Mp::one();
        while u != one && v != one {
            while !u.bit(0) {
                u = u.shr(1);
                x1 = if x1.bit(0) {
                    x1.add(p).shr(1)
                } else {
                    x1.shr(1)
                };
            }
            while !v.bit(0) {
                v = v.shr(1);
                x2 = if x2.bit(0) {
                    x2.add(p).shr(1)
                } else {
                    x2.shr(1)
                };
            }
            if u >= v {
                u = u.sub(&v);
                x1 = if x1 >= x2 {
                    x1.sub(&x2)
                } else {
                    x1.add(p).sub(&x2)
                };
            } else {
                v = v.sub(&u);
                x2 = if x2 >= x1 {
                    x2.sub(&x1)
                } else {
                    x2.add(p).sub(&x1)
                };
            }
        }
        let r = if u == one { x1 } else { x2 };
        Some(self.from_mp(&r))
    }

    /// Modular inverse by **Fermat's little theorem** (`a^(p-2)`), the
    /// method the Monte and Billie accelerated configurations use
    /// (§4.2.4).
    pub fn inv_fermat(&self, a: &FpElement) -> Option<FpElement> {
        if a.is_zero() {
            return None;
        }
        let e = self.modulus_mp.sub(&Mp::from_u64(2));
        Some(self.pow(a, &e))
    }

    fn check(&self, a: &FpElement) {
        debug_assert_eq!(a.0.len(), self.k, "element belongs to another field");
        debug_assert!(
            mp::cmp(&a.0, &self.modulus) == Ordering::Less,
            "element not reduced"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nist::NistPrime;

    fn all_fields() -> Vec<PrimeField> {
        NistPrime::ALL
            .iter()
            .map(|&p| PrimeField::nist(p))
            .collect()
    }

    #[test]
    fn add_sub_inverse() {
        for f in all_fields() {
            let a = f.from_u64(0xdead_beef_1234_5678);
            let b = f.from_mp(&f.modulus().sub(&Mp::from_u64(5)));
            let s = f.add(&a, &b);
            assert_eq!(f.sub(&s, &b), a, "{}", f.name());
            assert_eq!(f.add(&a, &f.neg(&a)), f.zero());
        }
    }

    #[test]
    fn mul_matches_division_reduction() {
        for f in all_fields() {
            // Deterministic pseudo-random operands near the modulus.
            let a = f.from_mp(&f.modulus().sub(&Mp::from_u64(12345)));
            let b = f.from_mp(&f.modulus().sub(&Mp::from_u64(987_654_321)));
            let fast = f.mul(&a, &b);
            let slow = a.to_mp().mul(&b.to_mp()).rem(f.modulus());
            assert_eq!(fast.to_mp(), slow, "{}", f.name());
        }
    }

    #[test]
    fn inversion_both_methods() {
        for f in all_fields() {
            let a = f.from_u64(0x1234_5678_9abc_def1);
            let i1 = f.inv(&a).unwrap();
            let i2 = f.inv_fermat(&a).unwrap();
            assert_eq!(i1, i2, "{}", f.name());
            assert_eq!(f.mul(&a, &i1), f.one(), "{}", f.name());
            assert!(f.inv(&f.zero()).is_none());
        }
    }

    #[test]
    fn reduce_wide_extremes() {
        for f in all_fields() {
            let k = f.k();
            // All-ones double-width value.
            let wide = vec![u32::MAX; 2 * k];
            let got = f.reduce_wide(&wide);
            let expect = Mp::from_limbs(&wide).rem(f.modulus());
            assert_eq!(got.to_mp(), expect, "{}", f.name());
            // Zero.
            assert!(f.reduce_wide(&vec![0; 2 * k]).is_zero());
        }
    }

    #[test]
    fn generic_modulus_group_order_style() {
        // An arbitrary odd prime (a 127-bit Mersenne), exercising the
        // generic path used for mod-n protocol arithmetic.
        let n = Mp::one().shl(127).sub(&Mp::one());
        let f = PrimeField::new("M127", &n);
        let a = f.from_u64(0xffff_ffff_ffff_fff1);
        let inv = f.inv(&a).unwrap();
        assert_eq!(f.mul(&a, &inv), f.one());
        let b = f.from_u64(3);
        assert_eq!(f.mul(&a, &b).to_mp(), a.to_mp().mul(&b.to_mp()).rem(&n));
    }

    #[test]
    fn pow_small_cases() {
        let f = PrimeField::nist(NistPrime::P192);
        let a = f.from_u64(2);
        assert_eq!(f.pow(&a, &Mp::from_u64(10)), f.from_u64(1024));
        assert_eq!(f.pow(&a, &Mp::zero()), f.one());
    }

    #[test]
    fn mul_u64_matches_repeated_add() {
        let f = PrimeField::nist(NistPrime::P224);
        let a = f.from_u64(0x1357_9bdf);
        let mut acc = f.zero();
        for _ in 0..29 {
            acc = f.add(&acc, &a);
        }
        assert_eq!(f.mul_u64(&a, 29), acc);
    }
}
