//! Multi-precision and finite-field arithmetic for ultra-low-energy
//! asymmetric cryptography.
//!
//! This crate is the *host reference implementation* of every arithmetic
//! routine evaluated in the paper ("The Design Space of Ultra-low Energy
//! Asymmetric Cryptography", ISPASS 2014, §4.2):
//!
//! * multi-precision integers on 32-bit limbs ([`mp`], [`Mp`]) with both
//!   **operand-scanning** (Algorithm 2) and **product-scanning**
//!   (Algorithm 3) multiplication,
//! * prime fields GF(p) with the NIST fast-reduction primes of
//!   eq. 4.3–4.7 ([`fp`], [`nist`]),
//! * Montgomery multiplication in the **CIOS** form of Algorithm 5
//!   ([`mont`]),
//! * binary fields GF(2^m) with the NIST reduction polynomials of
//!   eq. 4.8–4.12, comb multiplication (Algorithm 6), fast squaring, and
//!   word-level fast reduction (Algorithm 7) ([`f2m`]),
//! * the RFC 7748 ladder primes 2^255−19 and 2^448−2^224−1 with their
//!   one-term special-form reductions ([`xprime`]),
//! * modular inversion by the binary extended Euclidean algorithm and by
//!   Fermat's little theorem (§4.2.4).
//!
//! The simulated software suite (`ule-swlib`) and the hardware accelerator
//! models (`ule-monte`, `ule-billie`) are all differentially tested against
//! this crate.
//!
//! # Example
//!
//! ```
//! use ule_mpmath::{fp::PrimeField, nist::NistPrime};
//!
//! let field = PrimeField::nist(NistPrime::P192);
//! let a = field.from_u64(7);
//! let b = field.inv(&a).expect("7 is invertible");
//! assert_eq!(field.mul(&a, &b), field.one());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod f2m;
pub mod fp;
pub mod mont;
pub mod mp;
pub mod nist;
pub mod xprime;

pub use f2m::BinaryField;
pub use fp::PrimeField;
pub use mont::Montgomery;
pub use mp::{Limb, Mp, LIMB_BITS};
