//! Binary-field GF(2^m) arithmetic (§2.1.4, §4.2.2–4.2.4).
//!
//! Binary ("carry-less") arithmetic: addition is bitwise XOR, so no carry
//! chains and no reduction after add/sub. Multiplication is polynomial
//! multiplication over GF(2) followed by reduction modulo the irreducible
//! NIST polynomial (eq. 4.8–4.12).
//!
//! Three multipliers are provided, matching the three software tiers of
//! the paper:
//!
//! * [`BinaryField::mul_comb`] — the left-to-right **comb method with
//!   4-bit windows** (Algorithm 6), what the *baseline* (no carry-less
//!   hardware) runs;
//! * [`BinaryField::mul_clmul`] — carry-less **product scanning**, what the
//!   `MULGF2`/`MADDGF2` ISA extensions (Table 5.2) enable;
//! * [`BinaryField::mul`] — the default (clmul-based) host reference.
//!
//! Squaring uses the zero-interleaving expansion (§4.2.3) via an 8-bit →
//! 16-bit spread table, and reduction is the word-level fast reduction of
//! Algorithm 7, generalized over the sparse term list of the field
//! polynomial.

use crate::mp::{self, Limb, Mp};
use crate::nist::NistBinary;
use std::fmt;

/// Carry-less 32×32 → 64-bit multiplication (the datapath primitive the
/// `MULGF2` instruction provides in hardware).
pub fn clmul32(a: u32, b: u32) -> u64 {
    let mut acc = 0u64;
    let mut a64 = a as u64;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a64;
        }
        a64 <<= 1;
        b >>= 1;
    }
    acc
}

/// An element of a binary field: `k` little-endian limbs with every bit at
/// position `>= m` clear.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct F2mElement(Vec<Limb>);

impl F2mElement {
    /// The little-endian limbs of the element.
    pub fn limbs(&self) -> &[Limb] {
        &self.0
    }

    /// Converts to an integer whose bits are the polynomial coefficients.
    pub fn to_mp(&self) -> Mp {
        Mp::from_limbs(&self.0)
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        mp::is_zero(&self.0)
    }

    /// Returns coefficient `i` of the polynomial.
    pub fn bit(&self, i: usize) -> bool {
        mp::bit(&self.0, i)
    }

    /// Degree of the polynomial (`None` for zero).
    pub fn degree(&self) -> Option<usize> {
        let b = mp::bit_len(&self.0);
        if b == 0 {
            None
        } else {
            Some(b - 1)
        }
    }
}

impl fmt::Debug for F2mElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F2mElement(0x{})", self.to_mp().to_hex())
    }
}

/// A binary-field context GF(2^m) with a sparse irreducible polynomial.
#[derive(Clone, Debug)]
pub struct BinaryField {
    name: String,
    m: usize,
    k: usize,
    /// Term exponents below `m`, decreasing, last is 0.
    terms: Vec<usize>,
    /// Whether the fast word-level fold of Algorithm 7 is applicable
    /// (`m - t1 >= 32` and `m % 32 != 0`, true of every NIST field);
    /// otherwise reduction falls back to a bit-serial fold.
    word_foldable: bool,
    /// 8-bit → 16-bit zero-interleaving table used by fast squaring
    /// (§4.2.3: the software-only system's precomputed table).
    spread: [u16; 256],
}

impl BinaryField {
    /// Creates one of the five NIST binary fields of the study.
    pub fn nist(b: NistBinary) -> Self {
        Self::new(b.name(), b.m(), b.poly_terms())
    }

    /// Creates a field for `f(x) = x^m + sum(x^terms[i])`.
    ///
    /// # Panics
    ///
    /// Panics unless the term list is strictly decreasing and ends with 0.
    /// When `m - terms[0] >= 32` and `m % 32 != 0` (true of every NIST
    /// polynomial) reduction uses the fast word-level fold of Algorithm 7;
    /// otherwise it transparently falls back to a bit-serial fold.
    pub fn new(name: &str, m: usize, terms: &[usize]) -> Self {
        assert!(m >= 2);
        assert!(!terms.is_empty() && *terms.last().unwrap() == 0);
        assert!(terms.windows(2).all(|w| w[0] > w[1]), "terms must decrease");
        assert!(terms[0] < m, "terms must lie below the leading exponent");
        let word_foldable = m - terms[0] >= 32 && !m.is_multiple_of(32);
        let mut spread = [0u16; 256];
        for (b, entry) in spread.iter_mut().enumerate() {
            let mut s = 0u16;
            for i in 0..8 {
                if (b >> i) & 1 == 1 {
                    s |= 1 << (2 * i);
                }
            }
            *entry = s;
        }
        BinaryField {
            name: name.to_owned(),
            m,
            k: m.div_ceil(32),
            terms: terms.to_vec(),
            word_foldable,
            spread,
        }
    }

    /// Field name, e.g. `"B-163"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Extension degree `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Element width in limbs.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Term exponents of the reduction polynomial below `x^m`.
    pub fn terms(&self) -> &[usize] {
        &self.terms
    }

    /// The full reduction polynomial as an integer bit vector (degree `m`).
    pub fn poly_mp(&self) -> Mp {
        let mut f = Mp::one().shl(self.m);
        for &t in &self.terms {
            f = f.add(&Mp::one().shl(t)); // bits are distinct, add == xor
        }
        f
    }

    /// The zero element.
    pub fn zero(&self) -> F2mElement {
        F2mElement(vec![0; self.k])
    }

    /// The one element.
    pub fn one(&self) -> F2mElement {
        let mut v = vec![0; self.k];
        v[0] = 1;
        F2mElement(v)
    }

    /// Builds an element from an integer bit vector, reducing mod `f`.
    pub fn from_mp(&self, v: &Mp) -> F2mElement {
        // Bit-serial reduction of arbitrarily long input: fold every bit
        // >= m. Inputs in practice are <= 2m bits; clarity over speed.
        let mut limbs = v.limbs().to_vec();
        limbs.resize(limbs.len().max(2 * self.k), 0);
        let wide = self.reduce(&limbs);
        F2mElement(wide)
    }

    /// Interprets exactly `k` limbs as an element.
    ///
    /// # Panics
    ///
    /// Panics if the width is wrong or a coefficient at position `>= m` is
    /// set.
    pub fn from_limbs(&self, limbs: &[Limb]) -> F2mElement {
        assert_eq!(limbs.len(), self.k);
        assert!(mp::bit_len(limbs) <= self.m, "element not reduced");
        F2mElement(limbs.to_vec())
    }

    /// `a + b` — bitwise XOR; identical to subtraction (§2.1.4).
    pub fn add(&self, a: &F2mElement, b: &F2mElement) -> F2mElement {
        self.check(a);
        self.check(b);
        F2mElement(a.0.iter().zip(&b.0).map(|(x, y)| x ^ y).collect())
    }

    /// `a * b mod f` via the default (carry-less product scanning)
    /// multiplier.
    pub fn mul(&self, a: &F2mElement, b: &F2mElement) -> F2mElement {
        self.mul_clmul(a, b)
    }

    /// Left-to-right comb multiplication with 4-bit windows — Algorithm 6
    /// with `w = 4`, the choice the paper found to balance precomputation
    /// RAM against speed on the software-only system (§4.2.2).
    pub fn mul_comb(&self, a: &F2mElement, b: &F2mElement) -> F2mElement {
        self.check(a);
        self.check(b);
        let k = self.k;
        // Precompute Bu = u(x) * b(x) for all u of degree < 4.
        let mut table = vec![vec![0 as Limb; k + 1]; 16];
        #[allow(clippy::needless_range_loop)]
        for u in 1..16usize {
            let mut row = vec![0 as Limb; k + 1];
            for bit in 0..4 {
                if (u >> bit) & 1 == 1 {
                    let mut carry = 0u32;
                    for (j, &bw) in b.0.iter().enumerate() {
                        row[j] ^= (bw << bit) | carry;
                        carry = if bit == 0 { 0 } else { bw >> (32 - bit) };
                    }
                    row[k] ^= carry;
                }
            }
            table[u] = row;
        }
        let mut c = vec![0 as Limb; 2 * k + 1];
        for j in (0..8).rev() {
            for i in 0..k {
                let u = ((a.0[i] >> (4 * j)) & 0xf) as usize;
                if u != 0 {
                    for (l, &w) in table[u].iter().enumerate() {
                        c[i + l] ^= w;
                    }
                }
            }
            if j != 0 {
                // C <<= 4 (carry-less shift of the whole accumulator).
                let mut carry = 0u32;
                for w in c.iter_mut() {
                    let next = *w >> 28;
                    *w = (*w << 4) | carry;
                    carry = next;
                }
            }
        }
        F2mElement(self.reduce(&c[..2 * k]))
    }

    /// Carry-less product-scanning multiplication — Algorithm 3 with the
    /// `(t,u,v) <- (t,u,v) XOR a_j (x) b_{i-j}` step that the `MADDGF2`
    /// extension performs in hardware (§5.2.2). No precomputation, no
    /// table RAM.
    pub fn mul_clmul(&self, a: &F2mElement, b: &F2mElement) -> F2mElement {
        self.check(a);
        self.check(b);
        let k = self.k;
        let mut wide = vec![0 as Limb; 2 * k];
        let mut acc: u64 = 0;
        #[allow(clippy::needless_range_loop)]
        for i in 0..(2 * k - 1) {
            let lo = i.saturating_sub(k - 1);
            let hi = i.min(k - 1);
            for j in lo..=hi {
                acc ^= clmul32(a.0[j], b.0[i - j]);
            }
            wide[i] = acc as Limb;
            acc >>= 32;
        }
        wide[2 * k - 1] = acc as Limb;
        F2mElement(self.reduce(&wide))
    }

    /// `a^2 mod f` via zero-interleaving expansion (§4.2.3) — `O(k)`,
    /// dramatically cheaper than multiplication, one of the headline
    /// advantages of binary fields.
    pub fn sqr(&self, a: &F2mElement) -> F2mElement {
        self.check(a);
        let k = self.k;
        let mut wide = vec![0 as Limb; 2 * k];
        for (i, &w) in a.0.iter().enumerate() {
            let lo = self.spread[(w & 0xff) as usize] as u32
                | (self.spread[((w >> 8) & 0xff) as usize] as u32) << 16;
            let hi = self.spread[((w >> 16) & 0xff) as usize] as u32
                | (self.spread[(w >> 24) as usize] as u32) << 16;
            wide[2 * i] = lo;
            wide[2 * i + 1] = hi;
        }
        F2mElement(self.reduce(&wide))
    }

    /// Word-level fast reduction (Algorithm 7, generalized): folds a
    /// double-width polynomial back below degree `m` using the sparse term
    /// list. Returns `k` masked limbs.
    ///
    /// # Panics
    ///
    /// Panics if `wide.len() < k`.
    pub fn reduce(&self, wide: &[Limb]) -> Vec<Limb> {
        assert!(wide.len() >= self.k);
        if !self.word_foldable {
            return self.reduce_bit_serial(wide);
        }
        let mut c = wide.to_vec();
        let kw = self.m / 32; // word index containing bit m
        let r = self.m % 32;
        for i in (kw + 1..c.len()).rev() {
            let t = c[i];
            if t == 0 {
                continue;
            }
            c[i] = 0;
            let base = 32 * i - self.m;
            for &term in &self.terms {
                let s = base + term;
                let (word, off) = (s / 32, s % 32);
                c[word] ^= t << off;
                if off != 0 {
                    c[word + 1] ^= t >> (32 - off);
                }
            }
        }
        // Partial top word: coefficients m .. 32*(kw+1)-1.
        let t = c[kw] >> r;
        if t != 0 {
            for &term in &self.terms {
                let (word, off) = (term / 32, term % 32);
                c[word] ^= t << off;
                if off != 0 {
                    c[word + 1] ^= t >> (32 - off);
                }
            }
        }
        c[kw] &= (1u32 << r) - 1;
        c.truncate(self.k);
        debug_assert!(mp::bit_len(&c) <= self.m);
        c
    }

    /// Bit-serial reduction fallback for polynomials too dense (or fields
    /// too small) for the word fold.
    fn reduce_bit_serial(&self, wide: &[Limb]) -> Vec<Limb> {
        let mut c = wide.to_vec();
        for i in (self.m..32 * c.len()).rev() {
            if (c[i / 32] >> (i % 32)) & 1 == 1 {
                c[i / 32] ^= 1 << (i % 32);
                for &term in &self.terms {
                    let s = i - self.m + term;
                    c[s / 32] ^= 1 << (s % 32);
                }
            }
        }
        c.truncate(self.k);
        c
    }

    /// Inverse by the **polynomial extended Euclidean algorithm**
    /// (§4.2.4), or `None` for zero.
    pub fn inv(&self, a: &F2mElement) -> Option<F2mElement> {
        if a.is_zero() {
            return None;
        }
        // Work on (2k+1)-limb polynomials so g1/g2 shifts never clip.
        let width = 2 * self.k + 1;
        let pad = |v: &[Limb]| {
            let mut out = v.to_vec();
            out.resize(width, 0);
            out
        };
        let mut u = pad(&a.0);
        let mut v = pad(&self.poly_mp().to_limbs(self.k + 1));
        let mut g1 = pad(&[1]);
        let mut g2 = pad(&[]);
        let xor_shifted = |dst: &mut [Limb], src: &[Limb], j: usize| {
            let (ws, bs) = (j / 32, j % 32);
            for i in 0..src.len() {
                if src[i] == 0 {
                    continue;
                }
                dst[i + ws] ^= src[i] << bs;
                if bs != 0 && i + ws + 1 < dst.len() {
                    dst[i + ws + 1] ^= src[i] >> (32 - bs);
                }
            }
        };
        loop {
            let du = mp::bit_len(&u);
            if du <= 1 {
                break; // u == 1 (u can't reach 0 before 1: gcd(a,f)=1)
            }
            let dv = mp::bit_len(&v);
            if dv <= 1 {
                std::mem::swap(&mut u, &mut v);
                std::mem::swap(&mut g1, &mut g2);
                break;
            }
            if du >= dv {
                let j = du - dv;
                let vs = v.clone();
                let gs = g2.clone();
                xor_shifted(&mut u, &vs, j);
                xor_shifted(&mut g1, &gs, j);
            } else {
                let j = dv - du;
                let us = u.clone();
                let gs = g1.clone();
                xor_shifted(&mut v, &us, j);
                xor_shifted(&mut g2, &gs, j);
            }
        }
        debug_assert_eq!(mp::bit_len(&u), 1);
        Some(self.from_mp(&Mp::from_limbs(&g1)))
    }

    /// Inverse by **Fermat's little theorem** for GF(2^m):
    /// `a^(2^m - 2)` computed with square-and-multiply, the method the
    /// Billie-accelerated configuration uses because squaring is nearly
    /// free in hardware (§4.2.4, §5.5).
    pub fn inv_fermat(&self, a: &F2mElement) -> Option<F2mElement> {
        if a.is_zero() {
            return None;
        }
        // 2^m - 2 = 0b111...10 (m-1 ones then a zero).
        let mut result = self.one();
        for i in (1..self.m).rev() {
            result = self.sqr(&result);
            let _ = i;
            result = self.mul(&result, a);
        }
        Some(self.sqr(&result))
    }

    fn check(&self, a: &F2mElement) {
        debug_assert_eq!(a.0.len(), self.k, "element belongs to another field");
        debug_assert!(mp::bit_len(&a.0) <= self.m, "element not reduced");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nist::NistBinary;

    fn all_fields() -> Vec<BinaryField> {
        NistBinary::ALL
            .iter()
            .map(|&b| BinaryField::nist(b))
            .collect()
    }

    /// Slow polynomial reference: bit-serial multiply-and-reduce.
    fn slow_mul(f: &BinaryField, a: &F2mElement, b: &F2mElement) -> F2mElement {
        let mut acc = f.zero();
        for i in (0..f.m()).rev() {
            // acc = acc * x mod f
            let mut shifted = acc.to_mp().shl(1);
            if shifted.bit(f.m()) {
                let mut poly = Mp::one().shl(f.m());
                for &t in f.terms() {
                    poly = poly.add(&Mp::one().shl(t));
                }
                // xor == add here because the set bits are disjoint only
                // sometimes; do real xor via limbs.
                let mut l = shifted.to_limbs(f.k() + 1);
                let p = poly.to_limbs(f.k() + 1);
                for (x, y) in l.iter_mut().zip(&p) {
                    *x ^= *y;
                }
                shifted = Mp::from_limbs(&l);
            }
            acc = F2mElement(shifted.to_limbs(f.k()));
            if b.bit(i) {
                acc = f.add(&acc, a);
            }
        }
        acc
    }

    fn sample(f: &BinaryField, seed: u64) -> F2mElement {
        // xorshift-filled element
        let mut x = seed | 1;
        let mut limbs = vec![0u32; f.k()];
        for l in limbs.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *l = x as u32;
        }
        let r = f.m() % 32;
        limbs[f.k() - 1] &= (1u32 << r) - 1;
        f.from_limbs(&limbs)
    }

    #[test]
    fn clmul32_basics() {
        assert_eq!(clmul32(0, 12345), 0);
        assert_eq!(clmul32(1, 0xffff_ffff), 0xffff_ffff);
        // (x+1)(x+1) = x^2 + 1 in GF(2)[x]
        assert_eq!(clmul32(0b11, 0b11), 0b101);
        assert_eq!(clmul32(0xffff_ffff, 0xffff_ffff), 0x5555_5555_5555_5555);
    }

    #[test]
    fn gf2_7_worked_example_from_paper() {
        // §2.1.4: f(x) = x^7 + x + 1,
        // (x^6+x^3+x)(x^6+x^2+1) mod f = x^3 + x + 1
        let f = BinaryField::new("GF(2^7)", 7, &[1, 0]);
        let a = f.from_mp(&Mp::from_u64(0b1001010));
        let b = f.from_mp(&Mp::from_u64(0b1000101));
        assert_eq!(f.mul(&a, &b).to_mp().low_u64(), 0b1011);
        // (x^6+x^3+1)^2 mod f = x^5 + 1
        let c = f.from_mp(&Mp::from_u64(0b1001001));
        assert_eq!(f.sqr(&c).to_mp().low_u64(), 0b100001);
        // addition example: (x6+x4+x3+1) + (x5+x4+x2+1) = x6+x5+x3+x2
        let d = f.from_mp(&Mp::from_u64(0b1011001));
        let e = f.from_mp(&Mp::from_u64(0b0110101));
        assert_eq!(f.add(&d, &e).to_mp().low_u64(), 0b1101100);
    }

    #[test]
    fn multipliers_agree_with_slow_reference() {
        for f in all_fields() {
            let a = sample(&f, 0xabcdef12);
            let b = sample(&f, 0x12345678);
            let reference = slow_mul(&f, &a, &b);
            assert_eq!(f.mul_clmul(&a, &b), reference, "{} clmul", f.name());
            assert_eq!(f.mul_comb(&a, &b), reference, "{} comb", f.name());
        }
    }

    #[test]
    fn sqr_matches_mul() {
        for f in all_fields() {
            let a = sample(&f, 0xdeadbeef);
            assert_eq!(f.sqr(&a), f.mul(&a, &a), "{}", f.name());
        }
    }

    #[test]
    fn inversion_both_methods() {
        for f in all_fields() {
            let a = sample(&f, 0xfeedface);
            let i1 = f.inv(&a).expect("nonzero");
            let i2 = f.inv_fermat(&a).expect("nonzero");
            assert_eq!(i1, i2, "{}", f.name());
            assert_eq!(f.mul(&a, &i1), f.one(), "{}", f.name());
            assert!(f.inv(&f.zero()).is_none());
        }
    }

    #[test]
    fn add_is_involutive_and_sub() {
        for f in all_fields() {
            let a = sample(&f, 1);
            let b = sample(&f, 2);
            let s = f.add(&a, &b);
            assert_eq!(f.add(&s, &b), a); // add == sub
            assert_eq!(f.add(&a, &a), f.zero());
        }
    }

    #[test]
    fn distributivity_spot_check() {
        for f in all_fields() {
            let a = sample(&f, 3);
            let b = sample(&f, 4);
            let c = sample(&f, 5);
            let lhs = f.mul(&a, &f.add(&b, &c));
            let rhs = f.add(&f.mul(&a, &b), &f.mul(&a, &c));
            assert_eq!(lhs, rhs, "{}", f.name());
        }
    }

    #[test]
    fn frobenius_linearity() {
        // (a+b)^2 = a^2 + b^2 in characteristic 2 (§2.1.4).
        for f in all_fields() {
            let a = sample(&f, 6);
            let b = sample(&f, 7);
            assert_eq!(
                f.sqr(&f.add(&a, &b)),
                f.add(&f.sqr(&a), &f.sqr(&b)),
                "{}",
                f.name()
            );
        }
    }
}
