//! Divergence shrinking: reduce a full sign/verify mismatch to the
//! narrowest entry point and simplest configuration that still
//! reproduce it, then emit a one-line `repro verify` reproducer.

use ule_mpmath::mp::Mp;
use ule_pete::cpu::{EngineTier, ExecOptions};
use ule_swlib::harness::{read_buf, run_entry, write_buf, DEFAULT_MAX_CYCLES};

use crate::corpus::Case;
use crate::exec::{self, AnyCase, ConfigKind, CurveRig, Divergence};
use crate::ladder;

/// A divergence reduced to its minimal reproduction.
#[derive(Clone, Debug)]
pub struct ShrunkDivergence {
    /// The divergence as originally observed.
    pub original: Divergence,
    /// Narrowest entry point that reproduces it.
    pub entry: &'static str,
    /// Simplest configuration that reproduces it.
    pub config: ConfigKind,
    /// One-line replay command.
    pub reproducer: String,
}

impl ShrunkDivergence {
    /// Human-readable one-liner for the report.
    pub fn describe(&self) -> String {
        format!(
            "{} {} case {}: first seen at {}/{} field {}, shrunk to {}/{}",
            self.original.curve.name(),
            self.original.config.label(self.original.curve.is_binary()),
            self.original.case.label(),
            self.original.entry,
            self.original.config.label(self.original.curve.is_binary()),
            self.original.field,
            self.entry,
            self.config.label(self.original.curve.is_binary()),
        )
    }
}

/// Does `main_scalar_mul(k)` diverge from the host on this config?
/// (`k = 0` is outside the kernel's contract and never probed.)
fn scalar_mul_diverges(rig: &CurveRig, cfg: ConfigKind, tier: EngineTier, k_scalar: &Mp) -> bool {
    if k_scalar.is_zero() {
        return false;
    }
    let suite = rig.suite(cfg);
    let mut m = rig.machine(cfg);
    write_buf(&mut m, &suite.program, "arg_k", &k_scalar.to_limbs(rig.k));
    if run_entry(
        &mut m,
        &suite.program,
        "main_scalar_mul",
        ExecOptions::new(DEFAULT_MAX_CYCLES).with_tier(tier),
    )
    .is_err()
    {
        return true;
    }
    let host = rig.mul_g(k_scalar);
    let sim = (
        read_buf(&m, &suite.program, "out_r", rig.k),
        read_buf(&m, &suite.program, "out_s", rig.k),
    );
    host != sim
}

/// Does `main_twin_mul(u1, u2, Q)` diverge from the host?
fn twin_mul_diverges(
    rig: &CurveRig,
    cfg: ConfigKind,
    tier: EngineTier,
    u1: &Mp,
    u2: &Mp,
    case: &Case,
) -> bool {
    let suite = rig.suite(cfg);
    let mut m = rig.machine(cfg);
    write_buf(&mut m, &suite.program, "arg_e", &u1.to_limbs(rig.k));
    write_buf(&mut m, &suite.program, "arg_d", &u2.to_limbs(rig.k));
    write_buf(&mut m, &suite.program, "arg_qx", &case.qx);
    write_buf(&mut m, &suite.program, "arg_qy", &case.qy);
    if run_entry(
        &mut m,
        &suite.program,
        "main_twin_mul",
        ExecOptions::new(DEFAULT_MAX_CYCLES).with_tier(tier),
    )
    .is_err()
    {
        return true;
    }
    let host = rig.twin(u1, u2, &case.qx, &case.qy);
    let sim = (
        read_buf(&m, &suite.program, "out_r", rig.k),
        read_buf(&m, &suite.program, "out_s", rig.k),
    );
    host != sim
}

/// Does a full replay of the case's original entry diverge?
fn full_entry_diverges(
    rig: &CurveRig,
    cfg: ConfigKind,
    tier: EngineTier,
    entry: &str,
    case: &Case,
) -> bool {
    let mut replay = case.clone();
    replay.run_sign = entry == "main_sign";
    let mut no_fault = false;
    let outcome = exec::run_case(rig, &replay, &[cfg], tier, &mut no_fault);
    outcome.divergences.iter().any(|d| d.entry == entry)
}

/// Shrinks one divergence: probe the narrower entries first
/// (`main_scalar_mul`, then `main_twin_mul`), and for each entry the
/// simplest configurations first; fall back to the original
/// observation, which is reproducible by construction.
pub fn shrink(rig: &CurveRig, d: &Divergence, seed: u64) -> ShrunkDivergence {
    let binary = rig.id.is_binary();
    // Configurations from least machinery to the one that failed.
    let mut configs = vec![ConfigKind::Baseline, ConfigKind::IsaExt, ConfigKind::Coproc];
    if !configs.contains(&d.config) {
        configs.push(d.config);
    }

    // Replays run on the tier that observed the divergence, so a
    // tier-specific bug shrinks instead of vanishing.
    let tier = d.tier;
    let mut found: Option<(&'static str, ConfigKind)> = None;
    match &d.case {
        AnyCase::Ladder(case) => {
            // The ladder suite has a single entry, so shrinking is pure
            // configuration minimization.
            for &cfg in &configs {
                if ladder::ladder_diverges(rig, cfg, tier, case) {
                    found = Some(("main_xdh", cfg));
                    break;
                }
            }
        }
        AnyCase::Ecdsa(case) => {
            if d.entry == "main_verify" {
                let exp = exec::host_verify(rig, case);
                'outer: for &cfg in &configs {
                    for (entry, hit) in [
                        (
                            "main_scalar_mul",
                            scalar_mul_diverges(rig, cfg, tier, &exp.u1),
                        ),
                        (
                            "main_twin_mul",
                            twin_mul_diverges(rig, cfg, tier, &exp.u1, &exp.u2, case),
                        ),
                    ] {
                        if hit {
                            found = Some((entry, cfg));
                            break 'outer;
                        }
                    }
                }
            } else if d.entry == "main_sign" {
                'outer: for &cfg in &configs {
                    if scalar_mul_diverges(rig, cfg, tier, &case.nonce) {
                        found = Some(("main_scalar_mul", cfg));
                        break 'outer;
                    }
                }
            }
            // No narrower entry reproduces: minimize the configuration
            // of the original entry instead.
            if found.is_none() {
                for &cfg in &configs {
                    if cfg != d.config && full_entry_diverges(rig, cfg, tier, d.entry, case) {
                        found = Some((d.entry, cfg));
                        break;
                    }
                }
            }
        }
    }
    let (entry, config) = found.unwrap_or((d.entry, d.config));
    let tier_label = match tier {
        EngineTier::Fast => "fast",
        _ => "reference",
    };
    let reproducer = format!(
        "repro verify --seed {:#018x} --curve {} --case {} --config {} --tier {} --iters 1",
        seed,
        rig.id.name(),
        d.case.label(),
        config.label(binary),
        tier_label,
    );
    ShrunkDivergence {
        original: d.clone(),
        entry,
        config,
        reproducer,
    }
}
