//! Corpus generation: seeded random cases, the deterministic
//! adversarial edge set, and bit-flipped negative cases. Every case is
//! a pure function of `(campaign seed, curve, case label)`, so a
//! one-line reproducer can regenerate it exactly.

use ule_curves::ecdsa;
use ule_curves::params::CurveId;
use ule_mpmath::mp::Mp;
use ule_testkit::Rng;

use crate::exec::CurveRig;

/// One differential case: the sign inputs, the expected-valid
/// signature, and the (possibly mutated) verify inputs.
#[derive(Clone, Debug)]
pub struct Case {
    /// Stable label (`random:3`, `edge:d=n-1`, `negative:0`) — the
    /// replay key.
    pub label: String,
    /// Private key in `[1, n)`.
    pub d: Mp,
    /// Digest scalar in `[0, n)` fed to the sign entry.
    pub e: Mp,
    /// Nonce in `[1, n)` (re-rolled until the signature exists).
    pub nonce: Mp,
    /// Host signature `r` for the sign inputs.
    pub sig_r: Mp,
    /// Host signature `s`.
    pub sig_s: Mp,
    /// Digest fed to the verify entry (mutated for negatives).
    pub ver_e: Mp,
    /// `r` fed to the verify entry — always in `[1, n)`.
    pub ver_r: Mp,
    /// `s` fed to the verify entry — always in `[1, n)`.
    pub ver_s: Mp,
    /// Public key `d*G`, affine x limbs.
    pub qx: Vec<u32>,
    /// Public key `d*G`, affine y limbs.
    pub qy: Vec<u32>,
    /// Whether the sign entry runs (negatives only verify).
    pub run_sign: bool,
}

/// Replay selector for a single case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseSelector {
    /// `random:<index>`
    Random(usize),
    /// `edge:<name>`
    Edge(String),
    /// `negative:<index>`
    Negative(usize),
}

impl CaseSelector {
    /// Parses the CLI form (a case label).
    pub fn parse(s: &str) -> Option<CaseSelector> {
        let (kind, rest) = s.split_once(':')?;
        match kind {
            "random" => rest.parse().ok().map(CaseSelector::Random),
            "edge" => Some(CaseSelector::Edge(rest.to_string())),
            "negative" => rest.parse().ok().map(CaseSelector::Negative),
            _ => None,
        }
    }

    pub(crate) fn matches(&self, label: &str) -> bool {
        match self {
            CaseSelector::Random(i) => label == format!("random:{i}"),
            CaseSelector::Edge(name) => label == format!("edge:{name}"),
            CaseSelector::Negative(i) => label == format!("negative:{i}"),
        }
    }
}

/// Deterministic per-case RNG: campaign seed, curve, and label are
/// folded together, then splitmix64 scrambles. Shared with the ladder
/// corpus so both families replay from `(seed, curve, label)` alone.
pub(crate) fn case_rng(seed: u64, id: CurveId, label: &str) -> Rng {
    let mut h = seed ^ ((id as u64).wrapping_add(1) << 40);
    for &b in label.as_bytes() {
        h = h.rotate_left(8) ^ b as u64 ^ h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    Rng::new(h)
}

/// A random value in `[0, n)` from whole random limbs.
fn rand_mod_n(rng: &mut Rng, n: &Mp, k: usize) -> Mp {
    Mp::from_limbs(&rng.vec_u32(k)).rem(n)
}

/// A random value in `[1, n)`.
fn rand_nonzero(rng: &mut Rng, n: &Mp, k: usize) -> Mp {
    loop {
        let v = rand_mod_n(rng, n, k);
        if !v.is_zero() {
            return v;
        }
    }
}

/// Adversarial operand shapes (reduced mod `n`, forced nonzero where
/// the protocol demands it).
fn all_ones(n: &Mp, k: usize) -> Mp {
    Mp::from_limbs(&vec![0xffff_ffff; k]).rem(n)
}

fn sparse(n: &Mp, k: usize) -> Mp {
    let limbs: Vec<u32> = (0..k)
        .map(|i| if i % 3 == 0 { 0x8000_0001 } else { 0 })
        .collect();
    Mp::from_limbs(&limbs).rem(n)
}

fn dense(n: &Mp, k: usize) -> Mp {
    let limbs: Vec<u32> = (0..k)
        .map(|i| if i % 2 == 0 { 0xaaaa_aaaa } else { 0x5555_5555 })
        .collect();
    Mp::from_limbs(&limbs).rem(n)
}

fn nonzero_or_one(v: Mp) -> Mp {
    if v.is_zero() {
        Mp::one()
    } else {
        v
    }
}

/// Builds a case from explicit `(d, e)` with a fresh nonce, retrying
/// the nonce until the signature exists (`r, s != 0`).
fn make_case(rig: &CurveRig, rng: &mut Rng, label: String, d: Mp, e: Mp) -> Case {
    let n = rig.curve.n();
    let k = rig.k;
    loop {
        let nonce = rand_nonzero(rng, n, k);
        if let Some(sig) = ecdsa::sign_with_nonce(&rig.curve, &d, &e, &nonce) {
            let (qx, qy) = rig.mul_g(&d);
            return Case {
                label,
                ver_e: e.clone(),
                ver_r: sig.r.clone(),
                ver_s: sig.s.clone(),
                d,
                e,
                nonce,
                sig_r: sig.r,
                sig_s: sig.s,
                qx,
                qy,
                run_sign: true,
            };
        }
    }
}

/// Mutates one verify input of a valid case by a single bit flip,
/// keeping the kernels' input contract (`r, s ∈ [1, n)`, `e < n`).
/// Host and simulator must then reject identically.
fn mutate(rig: &CurveRig, rng: &mut Rng, base: &Case, label: String) -> Case {
    let n = rig.curve.n();
    let bits = n.bit_len();
    let mut case = base.clone();
    case.label = label;
    case.run_sign = false;
    loop {
        let target = rng.below(3);
        let bit = rng.below(bits as u64) as usize;
        let flip = |v: &Mp| -> Mp {
            let mut limbs = v.to_limbs(rig.k);
            limbs[bit / 32] ^= 1 << (bit % 32);
            Mp::from_limbs(&limbs)
        };
        match target {
            0 => {
                let r = flip(&base.ver_r);
                if !r.is_zero() && &r < n {
                    case.ver_r = r;
                    return case;
                }
            }
            1 => {
                let s = flip(&base.ver_s);
                if !s.is_zero() && &s < n {
                    case.ver_s = s;
                    return case;
                }
            }
            _ => {
                let e = flip(&base.ver_e);
                if &e < n {
                    case.ver_e = e;
                    return case;
                }
            }
        }
    }
}

/// The adversarial edge set. The heavy curves (≥ 384 bits, seconds per
/// baseline run) keep only the three cases that target the degenerate
/// code paths; the rest of the shapes are covered on the cheap curves
/// every campaign.
fn edge_specs(heavy: bool) -> &'static [&'static str] {
    const FULL: &[&str] = &[
        "d=1", "d=n-1", "e=0", "e=1", "e=n-1", "all-ones", "sparse", "dense",
    ];
    if heavy {
        &FULL[..3]
    } else {
        FULL
    }
}

fn edge_case(rig: &CurveRig, seed: u64, name: &str) -> Case {
    let n = rig.curve.n();
    let k = rig.k;
    let label = format!("edge:{name}");
    let mut rng = case_rng(seed, rig.id, &label);
    let (d, e) = match name {
        "d=1" => (Mp::one(), rand_mod_n(&mut rng, n, k)),
        "d=n-1" => (n.sub(&Mp::one()), rand_mod_n(&mut rng, n, k)),
        "e=0" => (rand_nonzero(&mut rng, n, k), Mp::zero()),
        "e=1" => (rand_nonzero(&mut rng, n, k), Mp::one()),
        "e=n-1" => (rand_nonzero(&mut rng, n, k), n.sub(&Mp::one())),
        "all-ones" => (nonzero_or_one(all_ones(n, k)), all_ones(n, k)),
        "sparse" => (nonzero_or_one(sparse(n, k)), sparse(n, k)),
        "dense" => (nonzero_or_one(dense(n, k)), dense(n, k)),
        other => panic!("unknown edge case {other:?}"),
    };
    make_case(rig, &mut rng, label, d, e)
}

/// Generates the corpus for one curve: `iters` random cases, the edge
/// set, and bit-flip negatives (one per eight random cases, at least
/// one). With a selector, exactly the matching case.
pub fn build_corpus(
    rig: &CurveRig,
    seed: u64,
    iters: usize,
    edge: bool,
    negative: bool,
    only: Option<&CaseSelector>,
) -> Vec<Case> {
    // Each case derives its own RNG from its label, so a replay can
    // generate just the selected case without walking the others.
    let want = |label: &str| only.is_none_or(|sel| sel.matches(label));
    let mut cases = Vec::new();
    for i in 0..iters {
        let label = format!("random:{i}");
        if !want(&label) {
            continue;
        }
        let mut rng = case_rng(seed, rig.id, &label);
        let n = rig.curve.n();
        let d = rand_nonzero(&mut rng, n, rig.k);
        let e = rand_mod_n(&mut rng, n, rig.k);
        cases.push(make_case(rig, &mut rng, label, d, e));
    }
    if edge {
        let heavy = rig.id.bits() >= 384;
        for name in edge_specs(heavy) {
            if want(&format!("edge:{name}")) {
                cases.push(edge_case(rig, seed, name));
            }
        }
    }
    // A replay may name an edge case outside the curve's default set
    // (e.g. a heavy curve's `edge:dense`); generate it directly.
    if let Some(CaseSelector::Edge(name)) = only {
        if cases.is_empty() && edge_specs(false).contains(&name.as_str()) {
            cases.push(edge_case(rig, seed, name));
        }
    }
    if negative {
        let count = std::cmp::max(1, iters / 8);
        for i in 0..count {
            let label = format!("negative:{i}");
            if !want(&label) {
                continue;
            }
            let mut rng = case_rng(seed, rig.id, &label);
            let n = rig.curve.n();
            let d = rand_nonzero(&mut rng, n, rig.k);
            let e = rand_mod_n(&mut rng, n, rig.k);
            let base = make_case(rig, &mut rng, label.clone(), d, e);
            cases.push(mutate(rig, &mut rng, &base, label));
        }
    }
    cases
}
