//! Cross-layer differential verification (`repro verify`).
//!
//! Runs full ECDSA sign + verify end-to-end on every simulated
//! configuration — baseline software, the ISA extension (with and
//! without an instruction cache, which must not change any
//! architectural result), and the family coprocessor (Monte / Billie) —
//! across all ten study curves, cross-checking every exposed RAM
//! intermediate against the `ule-curves` host reference:
//!
//! | entry         | checked buffers                          |
//! |---------------|------------------------------------------|
//! | `main_sign`   | `ecd_x` (raw `x(kG)`), `out_r`, `out_s`  |
//! | `main_verify` | `tw_u1`, `tw_u2`, `ecd_x` (mod n), `out_ok` |
//!
//! The corpus combines a seeded random sweep ([`ule_testkit::Rng`],
//! splitmix64), a deterministic adversarial edge set (`d ∈ {1, n-1}`,
//! digests `≡ 0 (mod n)`, all-ones / sparse / dense operand words), and
//! negative tests (bit-flipped signatures that host and simulator must
//! reject identically). Divergences are shrunk to a one-line
//! reproducer: narrowest diverging entry point (`main_verify` →
//! `main_twin_mul` → `main_scalar_mul`), simplest diverging
//! configuration, and a `repro verify` command that replays exactly the
//! offending case.
//!
//! Input contracts (the simulated kernels have no range guards — the
//! host reference rejects out-of-range components before the kernels
//! would run, so feeding them is not a differential):
//! - verify components satisfy `r, s ∈ [1, n)`; mutations that leave
//!   the range are re-rolled,
//! - `main_scalar_mul` is never fed `k = 0` (its first window must
//!   fire; `fig7_14` pins its raw cycle count, so it carries no guard).
//!
//! The two RFC 7748 curves (X25519/X448) run the ladder corpus instead
//! (see [`ladder`]): `main_xdh` shared secrets are cross-checked
//! against the host [`ule_curves::montgomery::MontCurve`] ladder on
//! every prime-field configuration, with the same seeded replay labels
//! and one-line reproducers. The ladder accepts every input, so the
//! negative corpus does not apply there.

pub mod batch_oracle;
pub mod corpus;
pub mod exec;
pub mod ladder;
pub mod shrink;

use std::fmt::Write as _;

use ule_curves::params::CurveId;

pub use batch_oracle::{run_batch_oracle, BatchOracleConfig, BatchOracleReport};
pub use corpus::{Case, CaseSelector};
pub use exec::{AnyCase, ConfigKind, CurveRig, Divergence, TierPolicy};
pub use ladder::LadderCase;
pub use shrink::ShrunkDivergence;

/// One campaign: corpus size, scope, and fault-injection switches.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Master seed; every case seed is derived from it.
    pub seed: u64,
    /// Random cases per curve before per-curve cost tiering.
    pub iters: usize,
    /// Curves to cover (default: the ten ECDSA study curves plus the
    /// two RFC 7748 ladder curves, which run the ladder corpus).
    pub curves: Vec<CurveId>,
    /// Include the deterministic adversarial edge corpus.
    pub edge: bool,
    /// Include bit-flipped-signature negative tests.
    pub negative: bool,
    /// Corrupt one RAM limb of the first simulated verification — the
    /// harness self-test: the campaign must catch and shrink it.
    pub inject_fault: bool,
    /// Replay exactly one case instead of generating the corpus.
    pub only_case: Option<CaseSelector>,
    /// Restrict to one configuration (reproducer replay).
    pub only_config: Option<ConfigKind>,
    /// Which execution-engine tier(s) the cases run on (default:
    /// alternate, so one campaign exercises both engines).
    pub tier: TierPolicy,
}

impl Campaign {
    /// A fresh campaign over all twelve curves with the full corpus.
    pub fn new(seed: u64, iters: usize) -> Campaign {
        let mut curves = CurveId::ALL.to_vec();
        curves.extend(CurveId::XCURVES);
        Campaign {
            seed,
            iters,
            curves,
            edge: true,
            negative: true,
            inject_fault: false,
            only_case: None,
            only_config: None,
            tier: TierPolicy::Alternate,
        }
    }
}

/// Per-curve case tally for the report.
#[derive(Clone, Debug)]
pub struct CurveTally {
    /// The curve.
    pub curve: CurveId,
    /// Cases exercised (each runs on every configuration).
    pub cases: usize,
    /// Simulator entry runs.
    pub sim_runs: usize,
}

/// Campaign outcome.
#[derive(Debug, Default)]
pub struct Report {
    /// Total cases across all curves.
    pub cases: usize,
    /// Total simulator entry runs.
    pub sim_runs: usize,
    /// Total buffer cross-checks performed.
    pub checks: usize,
    /// Per-curve tallies, in campaign order.
    pub per_curve: Vec<CurveTally>,
    /// Distinct configuration labels covered.
    pub configs: Vec<&'static str>,
    /// Divergences, already shrunk to minimal reproducers.
    pub divergences: Vec<ShrunkDivergence>,
}

impl Report {
    /// Deterministic human-readable summary.
    pub fn render(&self, campaign: &Campaign) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verify: seed={:#018x} iters={} curves={} configs={} [{}]",
            campaign.seed,
            campaign.iters,
            self.per_curve.len(),
            self.configs.len(),
            self.configs.join(" ")
        );
        for t in &self.per_curve {
            let _ = writeln!(
                out,
                "  {:<6} {:>3} cases {:>4} sim runs",
                t.curve.name(),
                t.cases,
                t.sim_runs
            );
        }
        let _ = writeln!(
            out,
            "verify: {} cases, {} sim runs, {} cross-checks, {} divergence(s)",
            self.cases,
            self.sim_runs,
            self.checks,
            self.divergences.len()
        );
        for s in &self.divergences {
            let _ = writeln!(out, "DIVERGENCE {}", s.describe());
            let _ = writeln!(out, "  reproduce: {}", s.reproducer);
        }
        out
    }
}

/// How many random cases a curve gets: the big fields cost seconds per
/// simulated verification (a K-571 baseline sign+verify is ~5 s), so
/// the budget is tiered by field size; every curve always gets at
/// least one case.
fn tiered_iters(id: CurveId, iters: usize) -> usize {
    let shift = match id.bits() {
        0..=192 => 0,
        193..=283 => 2,
        284..=409 => 4,
        _ => 5,
    };
    std::cmp::max(1, iters >> shift)
}

/// Runs a campaign: generate the corpus, execute every case on every
/// in-scope configuration, cross-check all exposed intermediates, and
/// shrink whatever diverged.
pub fn run_campaign(campaign: &Campaign) -> Report {
    let _span = ule_obs::span("verify.campaign");
    let mut report = Report::default();
    let mut raw: Vec<Divergence> = Vec::new();
    let mut fault_pending = campaign.inject_fault;
    let mut rigs: Vec<CurveRig> = Vec::new();
    for &id in &campaign.curves {
        let rig = CurveRig::new(id);
        let configs = exec::configs_for(id, campaign.only_config);
        for c in &configs {
            let label = c.label(id.is_binary());
            if !report.configs.contains(&label) {
                report.configs.push(label);
            }
        }
        let mut tally = CurveTally {
            curve: id,
            cases: 0,
            sim_runs: 0,
        };
        let record = |outcome: exec::CaseOutcome,
                      tally: &mut CurveTally,
                      report: &mut Report,
                      raw: &mut Vec<Divergence>| {
            tally.cases += 1;
            tally.sim_runs += outcome.sim_runs;
            report.checks += outcome.checks;
            for d in &outcome.divergences {
                ule_obs::obs_event!(
                    "verify.divergence",
                    curve = d.curve.name(),
                    config = d.config.label(d.curve.is_binary()),
                    entry = d.entry,
                    field = d.field,
                );
            }
            raw.extend(outcome.divergences);
        };
        if id.is_mont() {
            // The RFC 7748 curves run the ladder corpus: one entry
            // (`main_xdh`), cross-checked against the host ladder.
            let cases = ladder::build_ladder_corpus(
                &rig,
                campaign.seed,
                tiered_iters(id, campaign.iters),
                campaign.edge,
                campaign.only_case.as_ref(),
            );
            ule_obs::progress::add_total(cases.len() as u64);
            for (case_index, case) in cases.iter().enumerate() {
                let tier = campaign.tier.for_case(case_index);
                let progress =
                    ule_obs::progress::job_started(&format!("{}/case{case_index}", id.name()));
                let outcome =
                    ladder::run_ladder_case(&rig, case, &configs, tier, &mut fault_pending);
                ule_obs::progress::job_done(progress);
                record(outcome, &mut tally, &mut report, &mut raw);
            }
        } else {
            let cases = corpus::build_corpus(
                &rig,
                campaign.seed,
                tiered_iters(id, campaign.iters),
                campaign.edge,
                campaign.negative,
                campaign.only_case.as_ref(),
            );
            ule_obs::progress::add_total(cases.len() as u64);
            for (case_index, case) in cases.iter().enumerate() {
                let tier = campaign.tier.for_case(case_index);
                let progress =
                    ule_obs::progress::job_started(&format!("{}/case{case_index}", id.name()));
                let outcome = exec::run_case(&rig, case, &configs, tier, &mut fault_pending);
                ule_obs::progress::job_done(progress);
                record(outcome, &mut tally, &mut report, &mut raw);
            }
            // Engine-tier A/B spot check on the cheap curves: one case
            // per curve runs `main_verify` on BOTH tiers and every
            // counter is compared — the bit-exactness contract, checked
            // in-fuzzer.
            if id.bits() <= 233 && campaign.only_config.is_none() {
                if let Some(case) = cases.first() {
                    let outcome = exec::tier_ab_check(&rig, case, ConfigKind::Baseline);
                    tally.sim_runs += outcome.sim_runs;
                    report.checks += outcome.checks;
                    raw.extend(outcome.divergences);
                }
            }
        }
        report.cases += tally.cases;
        report.sim_runs += tally.sim_runs;
        report.per_curve.push(tally);
        rigs.push(rig);
    }
    for d in &raw {
        let rig = rigs
            .iter()
            .find(|r| r.id == d.curve)
            .expect("rig exists for every divergent curve");
        report
            .divergences
            .push(shrink::shrink(rig, d, campaign.seed));
    }
    ule_obs::obs_event!(
        "verify.campaign",
        cases = report.cases as u64,
        sim_runs = report.sim_runs as u64,
        checks = report.checks as u64,
        divergences = report.divergences.len() as u64,
    );
    report
}

/// Parses a curve name as the CLI accepts it: `P-192`, `p192`, `K571`,
/// `x25519`…
pub fn parse_curve(s: &str) -> Option<CurveId> {
    let norm: String = s
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_uppercase();
    CurveId::ALL
        .into_iter()
        .chain(CurveId::XCURVES)
        .find(|id| id.name().replace('-', "") == norm)
}

/// Parses a campaign seed: hex (`0x…`), decimal, or — for anything
/// else, like the conventional `0xULE` — a splitmix64 hash of the
/// string bytes, so any token is a valid, deterministic seed.
pub fn parse_seed(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // One splitmix64 round to spread the FNV bits.
    ule_testkit::Rng::new(h).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("0x10"), 16);
        assert_eq!(parse_seed("42"), 42);
        // Non-numeric tokens hash deterministically and distinctly.
        assert_eq!(parse_seed("0xULE"), parse_seed("0xULE"));
        assert_ne!(parse_seed("0xULE"), parse_seed("0xULF"));
    }

    #[test]
    fn curve_parsing() {
        assert_eq!(parse_curve("P-192"), Some(CurveId::P192));
        assert_eq!(parse_curve("k571"), Some(CurveId::K571));
        assert_eq!(parse_curve("x25519"), Some(CurveId::X25519));
        assert_eq!(parse_curve("X-448"), Some(CurveId::X448));
        assert_eq!(parse_curve("x12345"), None);
    }

    #[test]
    fn tiering_always_covers() {
        for id in CurveId::ALL.into_iter().chain(CurveId::XCURVES) {
            assert!(tiered_iters(id, 1) >= 1);
            assert!(tiered_iters(id, 64) >= 2);
        }
        assert_eq!(tiered_iters(CurveId::P192, 64), 64);
        assert_eq!(tiered_iters(CurveId::K571, 64), 2);
        assert_eq!(tiered_iters(CurveId::X25519, 64), 16);
        assert_eq!(tiered_iters(CurveId::X448, 64), 2);
    }

    #[test]
    fn default_campaign_covers_the_ladder_curves() {
        let c = Campaign::new(1, 4);
        assert!(c.curves.contains(&CurveId::X25519));
        assert!(c.curves.contains(&CurveId::X448));
        assert_eq!(c.curves.len(), 12);
    }

    #[test]
    fn ladder_campaign_replay_is_clean() {
        let mut c = Campaign::new(parse_seed("0xULE"), 1);
        c.curves = vec![CurveId::X25519];
        c.edge = false;
        c.negative = false;
        c.only_case = Some(CaseSelector::Random(0));
        c.only_config = Some(ConfigKind::Coproc);
        let report = run_campaign(&c);
        assert_eq!(report.cases, 1);
        assert_eq!(report.sim_runs, 1);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert_eq!(report.configs, vec!["monte"]);
    }

    #[test]
    fn ladder_fault_injection_is_caught() {
        let mut c = Campaign::new(parse_seed("0xULE"), 1);
        c.curves = vec![CurveId::X25519];
        c.edge = false;
        c.negative = false;
        c.only_case = Some(CaseSelector::Random(0));
        c.only_config = Some(ConfigKind::Coproc);
        c.inject_fault = true;
        let report = run_campaign(&c);
        assert_eq!(report.divergences.len(), 1);
        let s = &report.divergences[0];
        assert_eq!(s.original.entry, "main_xdh");
        assert_eq!(s.original.field, "out_r");
        assert!(s.reproducer.contains("--curve X25519"));
        assert!(s.reproducer.contains("--case random:0"));
    }
}
