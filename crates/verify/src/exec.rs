//! Differential executor: runs one corpus case on the simulated
//! configurations and cross-checks every exposed RAM intermediate
//! against the host reference model.

use ule_curves::binary::AffinePoint2m;
use ule_curves::params::{Curve, CurveId, CurveKind};
use ule_curves::prime::AffinePoint;
use ule_curves::scalar;
use ule_mpmath::mp::Mp;
use ule_pete::cpu::{EngineTier, ExecOptions, Machine, MachineConfig};
use ule_pete::icache::CacheConfig;
use ule_swlib::builder::{build_suite, Arch, Suite};
use ule_swlib::harness::{read_buf, run_entry, write_buf, DEFAULT_MAX_CYCLES};

use crate::corpus::Case;
use crate::ladder::LadderCase;

/// A corpus case of either family: the ECDSA sign/verify corpus or the
/// RFC 7748 ladder corpus. Divergences carry this so one shrinker /
/// report pipeline serves both paths.
#[derive(Clone, Debug)]
pub enum AnyCase {
    /// An ECDSA sign/verify case.
    Ecdsa(Case),
    /// A Montgomery-ladder shared-secret case.
    Ladder(LadderCase),
}

impl AnyCase {
    /// The replay label (`random:3`, `edge:u=0`, …).
    pub fn label(&self) -> &str {
        match self {
            AnyCase::Ecdsa(c) => &c.label,
            AnyCase::Ladder(c) => &c.label,
        }
    }
}

/// One simulated configuration. The instruction cache is
/// microarchitectural: the `*Icache` rows must produce bit-identical
/// results to their cacheless siblings, which is exactly why they are
/// in the matrix. `Coproc` resolves to Monte on prime curves and
/// Billie on binary ones — six distinct labels over the full campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigKind {
    /// Plain software, base ISA.
    Baseline,
    /// Base ISA behind a 4 KB instruction cache with prefetch.
    BaselineIcache,
    /// The multiply/carry ISA extension.
    IsaExt,
    /// ISA extension behind the same instruction cache.
    IsaExtIcache,
    /// Family coprocessor: Monte (prime) or Billie (binary).
    Coproc,
}

impl ConfigKind {
    /// All configurations, cheapest machinery first.
    pub const ALL: [ConfigKind; 5] = [
        ConfigKind::Baseline,
        ConfigKind::BaselineIcache,
        ConfigKind::IsaExt,
        ConfigKind::IsaExtIcache,
        ConfigKind::Coproc,
    ];

    /// CLI / report label.
    pub fn label(self, binary: bool) -> &'static str {
        match self {
            ConfigKind::Baseline => "baseline",
            ConfigKind::BaselineIcache => "baseline+ic",
            ConfigKind::IsaExt => "isa-ext",
            ConfigKind::IsaExtIcache => "isa-ext+ic",
            ConfigKind::Coproc => {
                if binary {
                    "billie"
                } else {
                    "monte"
                }
            }
        }
    }

    /// Parses a CLI label (either family's coprocessor name works).
    pub fn parse(s: &str) -> Option<ConfigKind> {
        match s {
            "baseline" => Some(ConfigKind::Baseline),
            "baseline+ic" => Some(ConfigKind::BaselineIcache),
            "isa-ext" => Some(ConfigKind::IsaExt),
            "isa-ext+ic" => Some(ConfigKind::IsaExtIcache),
            "monte" | "billie" | "coproc" => Some(ConfigKind::Coproc),
            _ => None,
        }
    }
}

/// The configurations in scope for one curve (all five, or the single
/// one a reproducer replay pinned).
pub fn configs_for(_id: CurveId, only: Option<ConfigKind>) -> Vec<ConfigKind> {
    match only {
        Some(c) => vec![c],
        None => ConfigKind::ALL.to_vec(),
    }
}

/// Which execution-engine tier(s) a campaign exercises. Both tiers are
/// contractually bit-identical, so any policy must find the same
/// divergences; `Alternate` (the default) splits the corpus across the
/// two engines so every campaign exercises both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierPolicy {
    /// Every case runs on the fast engine.
    Fast,
    /// Every case runs on the reference interpreter.
    Reference,
    /// Cases alternate between the tiers by corpus index (default).
    Alternate,
}

impl TierPolicy {
    /// The engine tier for the case at `index` in the corpus.
    pub fn for_case(self, index: usize) -> EngineTier {
        match self {
            TierPolicy::Fast => EngineTier::Fast,
            TierPolicy::Reference => EngineTier::Reference,
            TierPolicy::Alternate => {
                if index.is_multiple_of(2) {
                    EngineTier::Fast
                } else {
                    EngineTier::Reference
                }
            }
        }
    }

    /// CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            TierPolicy::Fast => "fast",
            TierPolicy::Reference => "reference",
            TierPolicy::Alternate => "alternate",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<TierPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "fast" => Some(TierPolicy::Fast),
            "reference" | "ref" => Some(TierPolicy::Reference),
            "alternate" | "alt" => Some(TierPolicy::Alternate),
            _ => None,
        }
    }
}

/// Everything needed to simulate one curve: the host curve object and
/// the three generated programs (baseline ISA, extended ISA, and the
/// coprocessor-accelerated build). Suites are generated once per
/// campaign, machines once per entry run.
pub struct CurveRig {
    /// The curve.
    pub id: CurveId,
    /// Host-side parameters.
    pub curve: Curve,
    /// Field words.
    pub k: usize,
    base: Suite,
    isa: Suite,
    cop: Suite,
}

impl CurveRig {
    /// Generates the three suites for a curve.
    pub fn new(id: CurveId) -> CurveRig {
        let curve = id.curve();
        let base = build_suite(&curve, Arch::Baseline);
        let isa = build_suite(&curve, Arch::IsaExt);
        let cop_arch = if id.is_binary() {
            Arch::Billie
        } else {
            Arch::Monte
        };
        let cop = build_suite(&curve, cop_arch);
        let k = base.k;
        CurveRig {
            id,
            curve,
            k,
            base,
            isa,
            cop,
        }
    }

    /// The suite a configuration runs on.
    pub fn suite(&self, cfg: ConfigKind) -> &Suite {
        match cfg {
            ConfigKind::Baseline | ConfigKind::BaselineIcache => &self.base,
            ConfigKind::IsaExt | ConfigKind::IsaExtIcache => &self.isa,
            ConfigKind::Coproc => &self.cop,
        }
    }

    /// A fresh machine for a configuration.
    pub fn machine(&self, cfg: ConfigKind) -> Machine {
        let suite = self.suite(cfg);
        let mc = match cfg {
            ConfigKind::Baseline => MachineConfig::baseline(),
            ConfigKind::BaselineIcache => {
                let mut c = MachineConfig::baseline();
                c.icache = Some(CacheConfig::real(4096, true));
                c
            }
            ConfigKind::IsaExt | ConfigKind::Coproc => MachineConfig::isa_ext(),
            ConfigKind::IsaExtIcache => {
                MachineConfig::isa_ext_with_cache(CacheConfig::real(4096, true))
            }
        };
        let b = Machine::builder(&suite.program, mc);
        let b = match suite.arch {
            Arch::Monte => b.coprocessor(Box::new(ule_monte::Monte::new())),
            Arch::Billie => b.coprocessor(Box::new(ule_billie::Billie::new(self.id.nist_binary()))),
            _ => b,
        };
        b.build()
    }

    /// Host `d*G` as affine limb pairs; the identity maps to the
    /// simulator's `(0, 0)` sentinel.
    pub fn mul_g(&self, d: &Mp) -> (Vec<u32>, Vec<u32>) {
        let k = self.k;
        match self.curve.kind() {
            CurveKind::Prime(c) => match scalar::mul_window(c, d, &c.generator()) {
                AffinePoint::Infinity => (vec![0; k], vec![0; k]),
                AffinePoint::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
            },
            CurveKind::Binary(c) => match scalar::mul_window(c, d, &c.generator()) {
                AffinePoint2m::Infinity => (vec![0; k], vec![0; k]),
                AffinePoint2m::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
            },
            CurveKind::Mont(_) => unreachable!("ladder curves use the ladder corpus"),
        }
    }

    /// Host twin multiplication `u1*G + u2*Q` as affine limb pairs
    /// (identity → `(0, 0)`), with `Q` given as limb coordinates.
    pub fn twin(&self, u1: &Mp, u2: &Mp, qx: &[u32], qy: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let k = self.k;
        match self.curve.kind() {
            CurveKind::Prime(c) => {
                let q = AffinePoint::new(c.field().from_limbs(qx), c.field().from_limbs(qy));
                match scalar::twin_mul(c, u1, &c.generator(), u2, &q) {
                    AffinePoint::Infinity => (vec![0; k], vec![0; k]),
                    AffinePoint::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
                }
            }
            CurveKind::Binary(c) => {
                let q = AffinePoint2m::new(c.field().from_limbs(qx), c.field().from_limbs(qy));
                match scalar::twin_mul(c, u1, &c.generator(), u2, &q) {
                    AffinePoint2m::Infinity => (vec![0; k], vec![0; k]),
                    AffinePoint2m::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
                }
            }
            CurveKind::Mont(_) => unreachable!("ladder curves use the ladder corpus"),
        }
    }

    /// The x-coordinate of `d*G` as a plain integer (what `ecd_x` holds
    /// after a signature's `fout`), `None` for the identity.
    pub fn x_of_mul_g(&self, d: &Mp) -> Option<Mp> {
        match self.curve.kind() {
            CurveKind::Prime(c) => c.x_as_integer(&scalar::mul_window(c, d, &c.generator())),
            CurveKind::Binary(c) => c.x_as_integer(&scalar::mul_window(c, d, &c.generator())),
            CurveKind::Mont(_) => unreachable!("ladder curves use the ladder corpus"),
        }
    }
}

/// What the host expects the sign entry to leave in RAM.
pub struct SignExpect {
    /// `ecd_x`: the raw x-coordinate of `kG` (pre `mod n`).
    pub ecd_x: Vec<u32>,
    /// `out_r`.
    pub r: Vec<u32>,
    /// `out_s`.
    pub s: Vec<u32>,
}

/// What the host expects the verify entry to leave in RAM.
pub struct VerifyExpect {
    /// `tw_u1 = e/s mod n`.
    pub u1: Mp,
    /// `tw_u2 = r/s mod n`.
    pub u2: Mp,
    /// The scalar pair the Billie kernel scans: for `Q = G` it
    /// canonicalizes to `(u1 + u2 mod n, 0)` — the guardless LD
    /// addition cannot scan two multiples of `G` — and leaves that
    /// pair in `tw_u1`/`tw_u2`.
    pub billie_u1: Mp,
    /// Second scanned scalar on Billie (zero when `Q = G`).
    pub billie_u2: Mp,
    /// `ecd_x`: `x(u1 G + u2 Q) mod n`, zeros for the identity.
    pub ecd_x: Vec<u32>,
    /// `out_ok`.
    pub ok: u32,
}

/// Host model of the simulated sign entry.
pub fn host_sign(rig: &CurveRig, case: &Case) -> SignExpect {
    let k = rig.k;
    let ecd_x = rig
        .x_of_mul_g(&case.nonce)
        .expect("corpus nonces are in [1, n)")
        .to_limbs(k);
    SignExpect {
        ecd_x,
        r: case.sig_r.to_limbs(k),
        s: case.sig_s.to_limbs(k),
    }
}

/// Host model of the simulated verify entry, evaluated on the exact
/// inputs the simulator sees (for negative cases these are mutated).
pub fn host_verify(rig: &CurveRig, case: &Case) -> VerifyExpect {
    let k = rig.k;
    let n = rig.curve.n();
    let nf = rig.curve.order_field();
    let w = nf
        .inv(&nf.from_mp(&case.ver_s))
        .expect("corpus keeps s in [1, n)");
    let u1 = nf.mul(&nf.from_mp(&case.ver_e), &w).to_mp();
    let u2 = nf.mul(&nf.from_mp(&case.ver_r), &w).to_mp();
    let (tx, _ty) = rig.twin(&u1, &u2, &case.qx, &case.qy);
    // `ecd_x` mirrors the kernel: `fout` of the twin x then `mod n` in
    // place. The identity sentinel (0) reduces to 0.
    let ecd_x = Mp::from_limbs(&tx).rem(n).to_limbs(k);
    let ok = u32::from(ecd_x == case.ver_r.to_limbs(k));
    let (gx, gy) = rig.mul_g(&Mp::one());
    let (billie_u1, billie_u2) = if case.qx == gx && case.qy == gy {
        (u1.add(&u2).rem(n), Mp::zero())
    } else {
        (u1.clone(), u2.clone())
    };
    VerifyExpect {
        u1,
        u2,
        billie_u1,
        billie_u2,
        ecd_x,
        ok,
    }
}

/// One host/simulator mismatch on one buffer of one entry run.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Curve the case ran on.
    pub curve: CurveId,
    /// Configuration that diverged.
    pub config: ConfigKind,
    /// Entry point that was running.
    pub entry: &'static str,
    /// RAM buffer that mismatched (or `<hang>` / `<tier-ab>`).
    pub field: &'static str,
    /// Engine tier the diverging run used (replayed by the shrinker).
    pub tier: EngineTier,
    /// Host expectation.
    pub host: Vec<u32>,
    /// Simulator contents.
    pub sim: Vec<u32>,
    /// The full offending case (the shrinker replays it).
    pub case: AnyCase,
}

/// Outcome of one case across its configurations.
pub struct CaseOutcome {
    /// Simulator entry runs performed.
    pub sim_runs: usize,
    /// Buffer comparisons performed.
    pub checks: usize,
    /// Mismatches found.
    pub divergences: Vec<Divergence>,
}

/// Accumulates buffer comparisons for one `(case, config, entry)`.
struct Checker<'a> {
    out: &'a mut CaseOutcome,
    rig: &'a CurveRig,
    cfg: ConfigKind,
    entry: &'static str,
    tier: EngineTier,
    case: &'a Case,
}

impl Checker<'_> {
    fn field(&mut self, field: &'static str, host: Vec<u32>, sim: Vec<u32>) {
        self.out.checks += 1;
        if host != sim {
            self.diverge(field, host, sim);
        }
    }

    /// A run that hit the cycle limit (or a missing entry symbol) is a
    /// divergence in its own right: the host always terminates.
    fn hang(&mut self) {
        self.out.checks += 1;
        self.diverge("<hang>", Vec::new(), Vec::new());
    }

    fn diverge(&mut self, field: &'static str, host: Vec<u32>, sim: Vec<u32>) {
        self.out.divergences.push(Divergence {
            curve: self.rig.id,
            config: self.cfg,
            entry: self.entry,
            field,
            tier: self.tier,
            host,
            sim,
            case: AnyCase::Ecdsa(self.case.clone()),
        });
    }
}

/// Runs one case on each configuration, sign entry (when the case has
/// one) then verify entry, cross-checking every exposed buffer. When
/// `fault_pending` is set, the first verification flips one bit of one
/// input limb in simulator RAM after marshalling — the harness
/// self-test — and clears the flag.
pub fn run_case(
    rig: &CurveRig,
    case: &Case,
    configs: &[ConfigKind],
    tier: EngineTier,
    fault_pending: &mut bool,
) -> CaseOutcome {
    let k = rig.k;
    let mut out = CaseOutcome {
        sim_runs: 0,
        checks: 0,
        divergences: Vec::new(),
    };
    let sign_expect = case.run_sign.then(|| host_sign(rig, case));
    let verify_expect = host_verify(rig, case);
    for &cfg in configs {
        if let Some(exp) = &sign_expect {
            let suite = rig.suite(cfg);
            let mut m = rig.machine(cfg);
            write_buf(&mut m, &suite.program, "arg_e", &case.e.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_d", &case.d.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_k", &case.nonce.to_limbs(k));
            out.sim_runs += 1;
            let run = run_entry(
                &mut m,
                &suite.program,
                "main_sign",
                ExecOptions::new(DEFAULT_MAX_CYCLES).with_tier(tier),
            );
            let mut ck = Checker {
                out: &mut out,
                rig,
                cfg,
                entry: "main_sign",
                tier,
                case,
            };
            match run {
                Ok(_) => {
                    let rd = |m: &Machine, b| read_buf(m, &suite.program, b, k);
                    ck.field("ecd_x", exp.ecd_x.clone(), rd(&m, "ecd_x"));
                    ck.field("out_r", exp.r.clone(), rd(&m, "out_r"));
                    ck.field("out_s", exp.s.clone(), rd(&m, "out_s"));
                }
                Err(_) => {
                    // A hang is a cycle-limit incident: dump the flight
                    // recorder tail (once per process) for triage.
                    ule_obs::flight::note_incident("cycle_limit");
                    ck.hang()
                }
            }
        }
        {
            let suite = rig.suite(cfg);
            let mut m = rig.machine(cfg);
            write_buf(&mut m, &suite.program, "arg_e", &case.ver_e.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_r", &case.ver_r.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_s", &case.ver_s.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_qx", &case.qx);
            write_buf(&mut m, &suite.program, "arg_qy", &case.qy);
            if *fault_pending {
                // Self-test: corrupt limb 0 of the public key's y in
                // simulator RAM only — the host model keeps the true
                // value, so the campaign must flag this run.
                let mut qy = case.qy.clone();
                qy[0] ^= 1;
                write_buf(&mut m, &suite.program, "arg_qy", &qy);
                *fault_pending = false;
            }
            out.sim_runs += 1;
            let run = run_entry(
                &mut m,
                &suite.program,
                "main_verify",
                ExecOptions::new(DEFAULT_MAX_CYCLES).with_tier(tier),
            );
            let mut ck = Checker {
                out: &mut out,
                rig,
                cfg,
                entry: "main_verify",
                tier,
                case,
            };
            match run {
                Ok(_) => {
                    let exp = &verify_expect;
                    let billie = cfg == ConfigKind::Coproc && rig.id.is_binary();
                    let (eu1, eu2) = if billie {
                        (&exp.billie_u1, &exp.billie_u2)
                    } else {
                        (&exp.u1, &exp.u2)
                    };
                    let rd = |m: &Machine, b| read_buf(m, &suite.program, b, k);
                    ck.field("tw_u1", eu1.to_limbs(k), rd(&m, "tw_u1"));
                    ck.field("tw_u2", eu2.to_limbs(k), rd(&m, "tw_u2"));
                    ck.field("ecd_x", exp.ecd_x.clone(), rd(&m, "ecd_x"));
                    ck.field(
                        "out_ok",
                        vec![exp.ok],
                        read_buf(&m, &suite.program, "out_ok", 1),
                    );
                }
                Err(_) => {
                    ule_obs::flight::note_incident("cycle_limit");
                    ck.hang()
                }
            }
        }
    }
    out
}

/// In-campaign A/B spot check: runs `main_verify` for one case on both
/// engine tiers and compares cycles, every pipeline counter, and the
/// raw memory statistics — the fast engine's bit-exactness contract,
/// checked inside the fuzzer on real curve workloads. Mismatches are
/// reported as `<tier-ab>` divergences (host = reference, sim = fast,
/// each encoded as the u64 cycle count split into u32 halves).
pub fn tier_ab_check(rig: &CurveRig, case: &Case, cfg: ConfigKind) -> CaseOutcome {
    let k = rig.k;
    let suite = rig.suite(cfg);
    let mut out = CaseOutcome {
        sim_runs: 0,
        checks: 0,
        divergences: Vec::new(),
    };
    let mut observed = Vec::new();
    for tier in [EngineTier::Reference, EngineTier::Fast] {
        let mut m = rig.machine(cfg);
        write_buf(&mut m, &suite.program, "arg_e", &case.ver_e.to_limbs(k));
        write_buf(&mut m, &suite.program, "arg_r", &case.ver_r.to_limbs(k));
        write_buf(&mut m, &suite.program, "arg_s", &case.ver_s.to_limbs(k));
        write_buf(&mut m, &suite.program, "arg_qx", &case.qx);
        write_buf(&mut m, &suite.program, "arg_qy", &case.qy);
        out.sim_runs += 1;
        let run = run_entry(
            &mut m,
            &suite.program,
            "main_verify",
            ExecOptions::new(DEFAULT_MAX_CYCLES).with_tier(tier),
        );
        observed.push((tier, run, m));
    }
    let (_, run_ref, m_ref) = &observed[0];
    let (_, run_fast, m_fast) = &observed[1];
    out.checks += 1;
    let identical = run_ref.is_ok() == run_fast.is_ok()
        && m_ref.counters() == m_fast.counters()
        && m_ref.rom_stats() == m_fast.rom_stats()
        && m_ref.ram_stats() == m_fast.ram_stats()
        && m_ref.icache_stats() == m_fast.icache_stats()
        && m_ref.cop_stats() == m_fast.cop_stats()
        && read_buf(m_ref, &suite.program, "out_ok", 1)
            == read_buf(m_fast, &suite.program, "out_ok", 1);
    if !identical {
        let enc = |m: &Machine| {
            let c = m.cycles();
            vec![c as u32, (c >> 32) as u32]
        };
        out.divergences.push(Divergence {
            curve: rig.id,
            config: cfg,
            entry: "main_verify",
            field: "<tier-ab>",
            tier: EngineTier::Fast,
            host: enc(m_ref),
            sim: enc(m_fast),
            case: AnyCase::Ecdsa(case.clone()),
        });
    }
    out
}
