//! Differential oracle for batch verification (`repro verify
//! --batch-oracle`).
//!
//! [`ule_curves::ecdsa::verify_batch_prehashed`]'s contract is
//! elementwise equality with `verify_prehashed` — the random-linear-
//! combination fast path may only ever conclude *all-accept*, and the
//! fallback is structurally the same per-item check. This oracle
//! attacks that contract with seeded mixed batches: valid signatures
//! (hinted and hint-less), bit-flipped `r`/`s`, the reject-path
//! components `r, s ∈ {0, n, n+1}`, inconsistent hints, and wrong-
//! message items, across every study curve.
//!
//! A divergence is shrunk to the smallest still-diverging sub-batch
//! (greedy one-item removal — batch verdicts are order-preserving, so
//! elementwise comparison survives subsetting) and reported with a
//! one-line `repro verify --batch-oracle` reproducer that replays
//! exactly the offending case.

use ule_curves::ecdsa::{self, BatchItem, Keypair, PublicKey, Signature};
use ule_curves::params::{Curve, CurveId};
use ule_mpmath::mp::Mp;
use ule_testkit::Rng;

/// One batch-oracle campaign.
#[derive(Clone, Debug)]
pub struct BatchOracleConfig {
    /// Master seed; each (curve, case) derives its own stream.
    pub seed: u64,
    /// Curves to cover.
    pub curves: Vec<CurveId>,
    /// Batches per curve (before the big-field cost tiering of
    /// [`crate::Campaign`]-style runs — the oracle is host-only and
    /// cheap, so every curve gets the full budget).
    pub cases: usize,
    /// Largest batch size the generator draws.
    pub max_batch: usize,
    /// Replay exactly one case index (reproducer mode).
    pub only_case: Option<usize>,
}

impl BatchOracleConfig {
    /// A full campaign over all ten curves.
    pub fn new(seed: u64, cases: usize) -> Self {
        BatchOracleConfig {
            seed,
            curves: CurveId::ALL.to_vec(),
            cases,
            max_batch: 20,
            only_case: None,
        }
    }
}

/// One shrunk divergence between batch and single verification.
#[derive(Clone, Debug)]
pub struct BatchDivergence {
    /// The curve.
    pub curve: CurveId,
    /// The diverging case index.
    pub case: usize,
    /// Indices (within the original batch) of the shrunk sub-batch
    /// that still diverges.
    pub kept: Vec<usize>,
    /// Per-item `(index, single_verdict, batch_verdict)` mismatches in
    /// the shrunk sub-batch.
    pub mismatches: Vec<(usize, bool, bool)>,
    /// One-line replay command.
    pub reproducer: String,
}

/// Campaign outcome.
#[derive(Clone, Debug, Default)]
pub struct BatchOracleReport {
    /// Batches checked.
    pub batches: usize,
    /// Items compared elementwise.
    pub items: usize,
    /// Batches the RLC fast path proved whole.
    pub rlc_batches: usize,
    /// Divergences, already shrunk.
    pub divergences: Vec<BatchDivergence>,
}

impl BatchOracleReport {
    /// Deterministic one-paragraph summary.
    pub fn render(&self, cfg: &BatchOracleConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch-oracle: seed={:#018x} curves={} cases={} max_batch={}",
            cfg.seed,
            cfg.curves.len(),
            cfg.cases,
            cfg.max_batch
        );
        let _ = writeln!(
            out,
            "batch-oracle: {} batches, {} items, {} rlc-proven, {} divergence(s)",
            self.batches,
            self.items,
            self.rlc_batches,
            self.divergences.len()
        );
        for d in &self.divergences {
            let _ = writeln!(
                out,
                "DIVERGENCE {} case {} items {:?}: {:?} (single vs batch)",
                d.curve.name(),
                d.case,
                d.kept,
                d.mismatches
            );
            let _ = writeln!(out, "  reproduce: {}", d.reproducer);
        }
        out
    }
}

/// Runs the campaign: every case builds one adversarial batch, compares
/// `verify_batch_prehashed` elementwise against `verify_prehashed`, and
/// shrinks any divergence.
pub fn run_batch_oracle(cfg: &BatchOracleConfig) -> BatchOracleReport {
    let _span = ule_obs::span("verify.batch_oracle");
    let mut report = BatchOracleReport::default();
    for &id in &cfg.curves {
        if id.is_mont() {
            // Batch verification is an ECDSA construct; the RFC 7748
            // curves carry no signatures, so a campaign whose curve
            // list includes them simply skips them here.
            continue;
        }
        let curve = id.curve();
        let keys = Keypair::derive(
            &curve,
            &[b"batch-oracle key".as_slice(), &cfg.seed.to_be_bytes()].concat(),
        );
        let public = keys.public();
        for case in 0..cfg.cases {
            if cfg.only_case.is_some_and(|only| only != case) {
                continue;
            }
            // Per-case stream: replaying one case never depends on the
            // draws of earlier ones.
            let mut rng =
                Rng::new(cfg.seed ^ (id.bits() as u64) << 32 ^ (case as u64).wrapping_mul(0x9e37));
            let batch_seed = rng.next_u64();
            let items = build_batch(&curve, &keys, cfg.max_batch, &mut rng);
            let expected: Vec<bool> = items
                .iter()
                .map(|it| ecdsa::verify_prehashed(&curve, &public, &it.e, &it.sig))
                .collect();
            let verdict = ecdsa::verify_batch_prehashed(&curve, &public, &items, batch_seed);
            report.batches += 1;
            report.items += items.len();
            if verdict.rlc_accepted {
                report.rlc_batches += 1;
            }
            if verdict.ok != expected {
                report.divergences.push(shrink_batch(
                    &curve, &public, id, case, cfg, batch_seed, &items, &expected,
                ));
            }
        }
        ule_obs::obs_event!(
            "verify.batch_oracle.curve",
            curve = id.name(),
            batches = report.batches as u64,
        );
    }
    report
}

/// One adversarial batch: a seeded mix of every item kind.
fn build_batch(curve: &Curve, keys: &Keypair, max_batch: usize, rng: &mut Rng) -> Vec<BatchItem> {
    let n = curve.n();
    let size = rng.range(1, max_batch.max(1) + 1);
    let mut items = Vec::with_capacity(size);
    for index in 0..size {
        let e = ecdsa::hash_to_scalar(curve, &rng.next_u64().to_be_bytes());
        let (sig, hint) = sign(curve, keys, &e, rng);
        let item = match rng.below(8) {
            // Valid, hinted — the RLC fast path's bread and butter.
            0..=2 => BatchItem {
                e,
                sig,
                hint: Some(hint),
            },
            // Valid, hint-less — forces the fallback for the batch.
            3 => BatchItem { e, sig, hint: None },
            // One bit of s (or r) flipped — must reject exactly like
            // the single verifier, hint left in place (still
            // consistent when r is untouched).
            4 => {
                let flip_r = rng.next_bool();
                let target = if flip_r { &sig.r } else { &sig.s };
                let flipped = flip_bit(target, rng.below(target.bit_len().max(1) as u64) as usize);
                let sig = if flip_r {
                    Signature {
                        r: flipped,
                        s: sig.s,
                    }
                } else {
                    Signature {
                        r: sig.r,
                        s: flipped,
                    }
                };
                BatchItem {
                    e,
                    sig,
                    hint: Some(hint),
                }
            }
            // Reject path: r or s ∈ {0, n, n+1}.
            5 => {
                let bad = match rng.below(3) {
                    0 => Mp::zero(),
                    1 => n.clone(),
                    _ => n.add(&Mp::one()),
                };
                let sig = if rng.next_bool() {
                    Signature { r: bad, s: sig.s }
                } else {
                    Signature { r: sig.r, s: bad }
                };
                BatchItem {
                    e,
                    sig,
                    hint: Some(hint),
                }
            }
            // Inconsistent hint (the public key is almost never the
            // nonce point): the verifier must fall back, never
            // mis-verdict.
            6 => BatchItem {
                e,
                sig,
                hint: Some(keys.public()),
            },
            // Valid signature over a *different* message — in-range
            // reject whose hint is still consistent with r, the case
            // that forces RLC failure and exact fallback.
            _ => {
                let other =
                    ecdsa::hash_to_scalar(curve, format!("other message {index}").as_bytes());
                BatchItem {
                    e: other,
                    sig,
                    hint: Some(hint),
                }
            }
        };
        items.push(item);
    }
    items
}

fn sign(curve: &Curve, keys: &Keypair, e: &Mp, rng: &mut Rng) -> (Signature, PublicKey) {
    loop {
        let k = ecdsa::derive_scalar(curve, &rng.next_u64().to_be_bytes(), b"nonce");
        if let Some(pair) = ecdsa::sign_with_nonce_recoverable(curve, keys.private(), e, &k) {
            return pair;
        }
    }
}

fn flip_bit(v: &Mp, bit: usize) -> Mp {
    let limb = bit / 32;
    let mut limbs = v.to_limbs((limb + 1).max(v.bit_len().div_ceil(32)));
    limbs[limb] ^= 1 << (bit % 32);
    Mp::from_limbs(&limbs)
}

/// Greedy one-item shrink: drop items whose removal keeps the batch
/// diverging, then record the surviving mismatches.
#[allow(clippy::too_many_arguments)]
fn shrink_batch(
    curve: &Curve,
    public: &PublicKey,
    id: CurveId,
    case: usize,
    cfg: &BatchOracleConfig,
    batch_seed: u64,
    items: &[BatchItem],
    expected: &[bool],
) -> BatchDivergence {
    let diverges = |keep: &[usize]| -> bool {
        let sub: Vec<BatchItem> = keep.iter().map(|&i| items[i].clone()).collect();
        let want: Vec<bool> = keep.iter().map(|&i| expected[i]).collect();
        ecdsa::verify_batch_prehashed(curve, public, &sub, batch_seed).ok != want
    };
    let mut kept: Vec<usize> = (0..items.len()).collect();
    let mut i = 0;
    while i < kept.len() {
        let mut candidate = kept.clone();
        candidate.remove(i);
        if !candidate.is_empty() && diverges(&candidate) {
            kept = candidate;
        } else {
            i += 1;
        }
    }
    let sub: Vec<BatchItem> = kept.iter().map(|&i| items[i].clone()).collect();
    let got = ecdsa::verify_batch_prehashed(curve, public, &sub, batch_seed).ok;
    let mismatches: Vec<(usize, bool, bool)> = kept
        .iter()
        .zip(&got)
        .filter(|(&orig, &g)| expected[orig] != g)
        .map(|(&orig, &g)| (orig, expected[orig], g))
        .collect();
    BatchDivergence {
        curve: id,
        case,
        kept,
        mismatches,
        reproducer: format!(
            "repro verify --batch-oracle --seed {:#018x} --curve {} --batch-case {case} \
             --batch-cases {} --max-batch {}",
            cfg.seed,
            id.name(),
            cfg.cases,
            cfg.max_batch
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_finds_no_divergence_on_cheap_curves() {
        let cfg = BatchOracleConfig {
            seed: 0x0b5e_55ed,
            curves: vec![CurveId::P192, CurveId::K163],
            cases: 6,
            max_batch: 12,
            only_case: None,
        };
        let report = run_batch_oracle(&cfg);
        assert_eq!(report.batches, 12);
        assert!(report.items > 12);
        assert!(report.divergences.is_empty(), "{}", report.render(&cfg));
        assert!(report.rlc_batches > 0, "some all-valid batch should RLC");
    }

    #[test]
    fn only_case_replays_one_batch_identically() {
        let full = BatchOracleConfig {
            seed: 3,
            curves: vec![CurveId::P192],
            cases: 4,
            max_batch: 6,
            only_case: None,
        };
        let replay = BatchOracleConfig {
            only_case: Some(2),
            ..full.clone()
        };
        let a = run_batch_oracle(&full);
        let b = run_batch_oracle(&replay);
        assert_eq!(a.batches, 4);
        assert_eq!(b.batches, 1);
        assert!(b.items <= a.items);
    }

    #[test]
    fn shrinker_isolates_an_injected_divergence() {
        // Build a batch, deliberately lie about one expectation, and
        // check the shrinker pins exactly that item — exercising the
        // shrink path without a real verifier bug.
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"shrink test");
        let public = keys.public();
        let mut rng = Rng::new(99);
        let items = build_batch(&curve, &keys, 8, &mut rng);
        let mut expected: Vec<bool> = items
            .iter()
            .map(|it| ecdsa::verify_prehashed(&curve, &public, &it.e, &it.sig))
            .collect();
        let victim = items.len() / 2;
        expected[victim] = !expected[victim];
        let cfg = BatchOracleConfig::new(1, 1);
        let d = shrink_batch(
            &curve,
            &public,
            CurveId::P192,
            0,
            &cfg,
            7,
            &items,
            &expected,
        );
        assert_eq!(d.kept, vec![victim]);
        assert_eq!(d.mismatches.len(), 1);
        assert_eq!(d.mismatches[0].0, victim);
        assert!(d.reproducer.contains("--batch-oracle"));
    }
}
