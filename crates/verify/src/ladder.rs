//! Differential fuzzing of the Montgomery-ladder (X25519/X448) suite.
//!
//! The ECDSA corpus does not fit the ladder curves: there is no
//! signature, no public-key pair, and a single entry (`main_xdh`) that
//! maps a raw (pre-clamp) scalar and a reduced peer `u`-coordinate to
//! the shared secret in `out_r`. This module is the ladder-shaped
//! mirror of `corpus`/`exec`: seeded random cases plus a deterministic
//! edge set (the all-zero low-order input that must produce the
//! all-zero secret, clamp boundaries, reduction boundaries), each run
//! on every in-scope configuration and cross-checked against the
//! RFC 7748-validated [`ule_curves::montgomery::MontCurve`] host
//! reference. Divergences reuse [`Divergence`] (entry `main_xdh`,
//! field `out_r`), so the campaign report and the shrinker's one-line
//! `repro verify` reproducers cover both families uniformly.

use ule_mpmath::mp::Mp;
use ule_pete::cpu::EngineTier;
use ule_pete::cpu::ExecOptions;
use ule_swlib::harness::{read_buf, run_entry, write_buf, DEFAULT_MAX_CYCLES};
use ule_testkit::Rng;

use crate::corpus::{case_rng, CaseSelector};
use crate::exec::{AnyCase, CaseOutcome, ConfigKind, CurveRig, Divergence};

/// One ladder case: the raw scalar limbs written to `arg_k` (the
/// kernel clamps, mirroring the host) and the reduced peer
/// `u`-coordinate limbs written to `arg_qx`.
#[derive(Clone, Debug)]
pub struct LadderCase {
    /// Stable replay label (`random:3`, `edge:u=0`).
    pub label: String,
    /// Raw scalar, `k` limbs, fed to `arg_k` *before* clamping.
    pub raw_k: Vec<u32>,
    /// Peer `u`-coordinate, reduced mod `p`, fed to `arg_qx`.
    pub u: Vec<u32>,
}

/// The host-expected shared secret for a case: clamp the raw scalar
/// exactly as the kernel does, then ladder over the peer `u`.
pub fn host_secret(rig: &CurveRig, case: &LadderCase) -> Vec<u32> {
    let mc = rig.curve.mont();
    let bytes: Vec<u8> = case.raw_k.iter().flat_map(|w| w.to_le_bytes()).collect();
    let clamped = mc.clamp(&bytes);
    let u = mc.field().from_limbs(&case.u);
    mc.ladder(&clamped, &u).limbs().to_vec()
}

/// The deterministic adversarial edge set. The first three survive the
/// heavy-curve (X448) trimming: the low-order zero input (the only
/// branch in the kernel), the clamp fixed-bit boundary, and the field
/// reduction boundary.
fn edge_specs(heavy: bool) -> &'static [&'static str] {
    const FULL: &[&str] = &[
        "u=0", "k=0", "u=p-1", "all-ones", "sparse", "dense", "u=base",
    ];
    if heavy {
        &FULL[..3]
    } else {
        FULL
    }
}

fn patterned(k: usize, f: impl Fn(usize) -> u32) -> Vec<u32> {
    (0..k).map(f).collect()
}

fn reduced(limbs: &[u32], p: &Mp, k: usize) -> Vec<u32> {
    Mp::from_limbs(limbs).rem(p).to_limbs(k)
}

fn rand_u(rng: &mut Rng, p: &Mp, k: usize) -> Vec<u32> {
    reduced(&rng.vec_u32(k), p, k)
}

fn edge_case(rig: &CurveRig, seed: u64, name: &str) -> LadderCase {
    let k = rig.k;
    let mc = rig.curve.mont();
    let p = mc.prime().modulus();
    let label = format!("edge:{name}");
    let mut rng = case_rng(seed, rig.id, &label);
    let (raw_k, u) = match name {
        // The all-zero u is a low-order point: the kernel's only branch
        // (the `fisz` guard before the inversion) must fire and leave
        // the all-zero secret.
        "u=0" => (rng.vec_u32(k), vec![0; k]),
        // Clamping turns the all-zero scalar into the lone fixed top
        // bit — the smallest scalar the ladder can ever see.
        "k=0" => (vec![0; k], rand_u(&mut rng, &p, k)),
        "u=p-1" => (rng.vec_u32(k), p.sub(&Mp::one()).to_limbs(k)),
        "all-ones" => (vec![0xffff_ffff; k], reduced(&vec![0xffff_ffff; k], &p, k)),
        "sparse" => {
            let pat = patterned(k, |i| if i % 3 == 0 { 0x8000_0001 } else { 0 });
            (pat.clone(), reduced(&pat, &p, k))
        }
        "dense" => {
            let pat = patterned(k, |i| if i % 2 == 0 { 0xaaaa_aaaa } else { 0x5555_5555 });
            (pat.clone(), reduced(&pat, &p, k))
        }
        "u=base" => (rng.vec_u32(k), mc.base_u().limbs().to_vec()),
        other => panic!("unknown ladder edge case {other:?}"),
    };
    LadderCase { label, raw_k, u }
}

/// Generates the ladder corpus for one curve: `iters` random cases plus
/// the edge set (negatives do not apply — the ladder accepts every
/// input). With a selector, exactly the matching case.
pub fn build_ladder_corpus(
    rig: &CurveRig,
    seed: u64,
    iters: usize,
    edge: bool,
    only: Option<&CaseSelector>,
) -> Vec<LadderCase> {
    let k = rig.k;
    let p = rig.curve.mont().prime().modulus();
    let want = |label: &str| only.is_none_or(|sel| sel.matches(label));
    let mut cases = Vec::new();
    for i in 0..iters {
        let label = format!("random:{i}");
        if !want(&label) {
            continue;
        }
        let mut rng = case_rng(seed, rig.id, &label);
        let raw_k = rng.vec_u32(k);
        let u = rand_u(&mut rng, &p, k);
        cases.push(LadderCase { label, raw_k, u });
    }
    if edge {
        let heavy = rig.id.bits() >= 384;
        for name in edge_specs(heavy) {
            if want(&format!("edge:{name}")) {
                cases.push(edge_case(rig, seed, name));
            }
        }
    }
    // A replay may name an edge outside the heavy curve's trimmed set.
    if let Some(CaseSelector::Edge(name)) = only {
        if cases.is_empty() && edge_specs(false).contains(&name.as_str()) {
            cases.push(edge_case(rig, seed, name));
        }
    }
    cases
}

/// Runs one ladder case on each configuration, cross-checking `out_r`
/// against the host shared secret. `fault_pending` mirrors the ECDSA
/// harness self-test: flip one bit of the peer `u` in simulator RAM on
/// the first run, which the campaign must catch.
pub fn run_ladder_case(
    rig: &CurveRig,
    case: &LadderCase,
    configs: &[ConfigKind],
    tier: EngineTier,
    fault_pending: &mut bool,
) -> CaseOutcome {
    let host = host_secret(rig, case);
    let mut out = CaseOutcome {
        sim_runs: 0,
        checks: 0,
        divergences: Vec::new(),
    };
    for &cfg in configs {
        let suite = rig.suite(cfg);
        let mut m = rig.machine(cfg);
        write_buf(&mut m, &suite.program, "arg_k", &case.raw_k);
        write_buf(&mut m, &suite.program, "arg_qx", &case.u);
        if *fault_pending {
            let mut u = case.u.clone();
            u[0] ^= 1;
            write_buf(&mut m, &suite.program, "arg_qx", &u);
            *fault_pending = false;
        }
        out.sim_runs += 1;
        let run = run_entry(
            &mut m,
            &suite.program,
            "main_xdh",
            ExecOptions::new(DEFAULT_MAX_CYCLES).with_tier(tier),
        );
        out.checks += 1;
        let (field, sim) = match run {
            Ok(_) => ("out_r", read_buf(&m, &suite.program, "out_r", rig.k)),
            Err(_) => {
                ule_obs::flight::note_incident("cycle_limit");
                ("<hang>", Vec::new())
            }
        };
        if field == "<hang>" || sim != host {
            out.divergences.push(Divergence {
                curve: rig.id,
                config: cfg,
                entry: "main_xdh",
                field,
                tier,
                host: if field == "<hang>" {
                    Vec::new()
                } else {
                    host.clone()
                },
                sim,
                case: AnyCase::Ladder(case.clone()),
            });
        }
    }
    out
}

/// Does a clean replay of `main_xdh` diverge on this configuration?
/// (The shrinker's probe — a hang counts as a divergence.)
pub fn ladder_diverges(
    rig: &CurveRig,
    cfg: ConfigKind,
    tier: EngineTier,
    case: &LadderCase,
) -> bool {
    let mut no_fault = false;
    let outcome = run_ladder_case(rig, case, &[cfg], tier, &mut no_fault);
    !outcome.divergences.is_empty()
}
