//! Engine-tier A/B differential test: the fast engine (translation
//! cache + fused superinstructions) must produce reports that are
//! bit-identical to the instrumented reference interpreter — same
//! cycles, same `Counters`, same `RawStats`, same energy — on real
//! sign+verify workloads across the architecture classes.
//!
//! The default test covers the two cheap curves (one prime, one
//! binary) on all four architecture classes; the `#[ignore]`d
//! exhaustive variant sweeps all ten curves (minutes of wall-clock —
//! run with `cargo test -p ule-core --test tier_ab -- --ignored`).

use ule_core::{RunOptions, System, SystemConfig, Workload};
use ule_curves::params::CurveId;
use ule_pete::cpu::EngineTier;
use ule_swlib::builder::Arch;

/// The architecture matrix for one curve: software archs plus the
/// family coprocessor, with and without an instruction cache.
fn configs_for(id: CurveId) -> Vec<SystemConfig> {
    let cop = if id.is_binary() {
        Arch::Billie
    } else {
        Arch::Monte
    };
    vec![
        SystemConfig::new(id, Arch::Baseline),
        SystemConfig::new(id, Arch::IsaExt),
        SystemConfig::new(id, Arch::IsaExt)
            .with_icache(ule_pete::icache::CacheConfig::real(4096, true)),
        SystemConfig::new(id, cop),
    ]
}

fn assert_tiers_identical(cfg: SystemConfig, workload: Workload) {
    let sys = System::new(cfg);
    let fast = sys.run_with(RunOptions::new(workload).with_tier(EngineTier::Fast));
    let reference = sys.run_with(RunOptions::new(workload).with_tier(EngineTier::Reference));
    let ctx = format!("{} {:?} {}", cfg.curve.name(), cfg.arch, workload.name());
    assert_eq!(fast.cycles, reference.cycles, "cycles diverge: {ctx}");
    assert_eq!(fast.counters, reference.counters, "counters diverge: {ctx}");
    assert_eq!(fast.raw, reference.raw, "raw stats diverge: {ctx}");
    assert_eq!(
        fast.activity, reference.activity,
        "activity diverges: {ctx}"
    );
    assert_eq!(fast.energy, reference.energy, "energy diverges: {ctx}");
}

#[test]
fn fast_and_reference_tiers_agree_on_cheap_curves() {
    for id in [CurveId::P192, CurveId::K163] {
        for cfg in configs_for(id) {
            assert_tiers_identical(cfg, Workload::SignVerify);
        }
    }
}

/// A profiled reference run and an unprofiled fast run must also agree
/// on every reported number — profiling is purely observational.
#[test]
fn profiled_reference_equals_unprofiled_fast() {
    let cfg = SystemConfig::new(CurveId::P192, Arch::IsaExt);
    let sys = System::new(cfg);
    let fast = sys.run_with(RunOptions::new(Workload::Sign).with_tier(EngineTier::Fast));
    let profiled = sys.run_with(RunOptions::new(Workload::Sign).profiled());
    assert!(fast.profile.is_none());
    assert!(profiled.profile.is_some());
    assert_eq!(fast.cycles, profiled.cycles);
    assert_eq!(fast.counters, profiled.counters);
    assert_eq!(fast.raw, profiled.raw);
    assert_eq!(fast.energy, profiled.energy);
}

#[test]
#[ignore = "exhaustive ten-curve sweep; minutes of wall-clock"]
fn fast_and_reference_tiers_agree_on_all_curves() {
    for id in CurveId::ALL {
        for cfg in configs_for(id) {
            assert_tiers_identical(cfg, Workload::SignVerify);
        }
    }
}
