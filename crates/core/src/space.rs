//! Typed parameter lattices over [`SystemConfig`] — the declarative
//! half of the design-space explorer (`ule-dse`).
//!
//! A [`SpaceSpec`] names one candidate list per configuration knob
//! ([`Axis`]); [`SpaceSpec::enumerate`] takes the cross product,
//! applies the per-architecture validity rules (a Billie digit width
//! only distinguishes Billie points, Monte front-end knobs only Monte
//! points, gating only accelerator points), drops unsupported
//! `(curve, arch, workload)` triples via [`crate::supports`] (Monte
//! accelerates prime fields only, Billie binary fields only, ladder
//! workloads need the RFC 7748 curves and vice versa), and returns
//! the deduplicated lattice in a *canonical order*. That order is load-bearing: the
//! explorer's Pareto tie-breaking and its provable pruning rules both
//! key off a point's index in the enumerated lattice, which is a pure
//! function of the spec — independent of threads, seeds, or strategy.
//!
//! ```
//! use ule_core::space::{Axis, SpaceSpec};
//! use ule_core::Workload;
//! use ule_curves::params::CurveId;
//! use ule_swlib::builder::Arch;
//!
//! let space = SpaceSpec::new("digit-demo", Workload::ScalarMul)
//!     .axis(Axis::Curves(vec![CurveId::K163]))
//!     .axis(Axis::Archs(vec![Arch::Billie]))
//!     .axis(Axis::BillieDigits(vec![1, 2, 3, 4]));
//! assert_eq!(space.enumerate().unwrap().len(), 4);
//! ```

use crate::{MultVariant, SystemConfig, Workload};
use std::collections::HashSet;
use ule_curves::params::CurveId;
use ule_energy::report::Gating;
use ule_monte::MonteConfig;
use ule_pete::icache::{CacheConfig, CacheGeometryError};
use ule_swlib::builder::Arch;

/// One knob's candidate list. Declaring an axis replaces that knob's
/// default single-value list in the [`SpaceSpec`]; list order is
/// significant (it fixes the canonical enumeration order, and the
/// greedy strategy can only prune a point in favour of an
/// *earlier-listed* sibling).
#[derive(Clone, Debug, PartialEq)]
pub enum Axis {
    /// Curves to cover.
    Curves(Vec<CurveId>),
    /// Architectures to cover.
    Archs(Vec<Arch>),
    /// Instruction-cache options (`None` = no cache).
    Icaches(Vec<Option<CacheConfig>>),
    /// Monte front-end configurations (only distinguishes Monte points).
    Montes(Vec<MonteConfig>),
    /// Billie multiplier digit widths (only distinguishes Billie
    /// points; each must be in [`BILLIE_DIGIT_RANGE`]).
    BillieDigits(Vec<usize>),
    /// §7.8 multiplier power variants.
    MultVariants(Vec<MultVariant>),
    /// Idle-accelerator gating strategies (only distinguishes
    /// accelerator points).
    Gatings(Vec<Gating>),
    /// Billie register-file technologies (only distinguishes Billie
    /// points).
    BillieSramRf(Vec<bool>),
}

impl Axis {
    /// The axis's display name (matches the `SystemConfig` field).
    pub fn name(&self) -> &'static str {
        match self {
            Axis::Curves(_) => "curve",
            Axis::Archs(_) => "arch",
            Axis::Icaches(_) => "icache",
            Axis::Montes(_) => "monte",
            Axis::BillieDigits(_) => "billie_digit",
            Axis::MultVariants(_) => "mult_variant",
            Axis::Gatings(_) => "gating",
            Axis::BillieSramRf(_) => "billie_sram_rf",
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Axis::Curves(v) => v.is_empty(),
            Axis::Archs(v) => v.is_empty(),
            Axis::Icaches(v) => v.is_empty(),
            Axis::Montes(v) => v.is_empty(),
            Axis::BillieDigits(v) => v.is_empty(),
            Axis::MultVariants(v) => v.is_empty(),
            Axis::Gatings(v) => v.is_empty(),
            Axis::BillieSramRf(v) => v.is_empty(),
        }
    }
}

/// Digit widths the Billie model supports (`Billie::with_config`
/// asserts the same bounds).
pub const BILLIE_DIGIT_RANGE: std::ops::RangeInclusive<usize> = 1..=16;

/// Why a [`SpaceSpec`] does not describe a valid lattice.
#[derive(Clone, Debug, PartialEq)]
pub enum SpaceError {
    /// An axis was declared with an empty candidate list.
    EmptyAxis(&'static str),
    /// An instruction-cache candidate has invalid geometry.
    InvalidCache(CacheGeometryError),
    /// A Billie digit width is outside [`BILLIE_DIGIT_RANGE`].
    InvalidDigit(usize),
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::EmptyAxis(name) => write!(f, "axis {name:?} has no candidate values"),
            SpaceError::InvalidCache(e) => write!(f, "{e}"),
            SpaceError::InvalidDigit(d) => write!(
                f,
                "billie digit width {d} outside the supported range {}..={}",
                BILLIE_DIGIT_RANGE.start(),
                BILLIE_DIGIT_RANGE.end()
            ),
        }
    }
}

impl std::error::Error for SpaceError {}

/// A declarative parameter lattice: one candidate list per knob plus
/// the workload every point runs.
#[derive(Clone, Debug, PartialEq)]
pub struct SpaceSpec {
    /// Space name (journal records and reports carry it).
    pub name: String,
    /// The workload simulated at every point.
    pub workload: Workload,
    curves: Vec<CurveId>,
    archs: Vec<Arch>,
    icaches: Vec<Option<CacheConfig>>,
    montes: Vec<MonteConfig>,
    billie_digits: Vec<usize>,
    mult_variants: Vec<MultVariant>,
    gatings: Vec<Gating>,
    billie_sram_rf: Vec<bool>,
}

impl SpaceSpec {
    /// A one-point space at the standard P-192 baseline; grow it with
    /// [`axis`](Self::axis).
    pub fn new(name: impl Into<String>, workload: Workload) -> Self {
        SpaceSpec {
            name: name.into(),
            workload,
            curves: vec![CurveId::P192],
            archs: vec![Arch::Baseline],
            icaches: vec![None],
            montes: vec![MonteConfig::default()],
            billie_digits: vec![3],
            mult_variants: vec![MultVariant::Karatsuba],
            gatings: vec![Gating::None],
            billie_sram_rf: vec![false],
        }
    }

    /// Replaces one knob's candidate list.
    pub fn axis(mut self, axis: Axis) -> Self {
        match axis {
            Axis::Curves(v) => self.curves = v,
            Axis::Archs(v) => self.archs = v,
            Axis::Icaches(v) => self.icaches = v,
            Axis::Montes(v) => self.montes = v,
            Axis::BillieDigits(v) => self.billie_digits = v,
            Axis::MultVariants(v) => self.mult_variants = v,
            Axis::Gatings(v) => self.gatings = v,
            Axis::BillieSramRf(v) => self.billie_sram_rf = v,
        }
        self
    }

    /// The declared candidate list of each axis, in canonical axis
    /// order (outermost enumeration loop first).
    pub fn axes(&self) -> [Axis; 8] {
        [
            Axis::Curves(self.curves.clone()),
            Axis::Archs(self.archs.clone()),
            Axis::Icaches(self.icaches.clone()),
            Axis::Montes(self.montes.clone()),
            Axis::BillieDigits(self.billie_digits.clone()),
            Axis::MultVariants(self.mult_variants.clone()),
            Axis::Gatings(self.gatings.clone()),
            Axis::BillieSramRf(self.billie_sram_rf.clone()),
        ]
    }

    /// The declared mult-variant candidates, in axis order.
    pub fn mult_variants(&self) -> &[MultVariant] {
        &self.mult_variants
    }

    /// The declared gating candidates, in axis order.
    pub fn gatings(&self) -> &[Gating] {
        &self.gatings
    }

    /// The declared Billie register-file candidates, in axis order.
    pub fn billie_sram_rf(&self) -> &[bool] {
        &self.billie_sram_rf
    }

    /// Validates every axis value without enumerating.
    pub fn validate(&self) -> Result<(), SpaceError> {
        for axis in self.axes() {
            if axis.is_empty() {
                return Err(SpaceError::EmptyAxis(axis.name()));
            }
        }
        for ic in self.icaches.iter().flatten() {
            ic.validate().map_err(SpaceError::InvalidCache)?;
        }
        for &d in &self.billie_digits {
            if !BILLIE_DIGIT_RANGE.contains(&d) {
                return Err(SpaceError::InvalidDigit(d));
            }
        }
        Ok(())
    }

    /// Enumerates the lattice: the cross product of every axis,
    /// canonicalized by [`canonicalize`] and deduplicated (first
    /// occurrence wins), in row-major order with the axes of
    /// [`axes`](Self::axes) nested outermost-first.
    ///
    /// The returned order is deterministic and is the identity the
    /// explorer uses for tie-breaking: "point `i`" always means the
    /// same configuration for a given spec.
    pub fn enumerate(&self) -> Result<Vec<SystemConfig>, SpaceError> {
        self.validate()?;
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for &curve in &self.curves {
            for &arch in &self.archs {
                for &icache in &self.icaches {
                    for &monte in &self.montes {
                        for &billie_digit in &self.billie_digits {
                            for &mult_variant in &self.mult_variants {
                                for &gating in &self.gatings {
                                    for &billie_sram_rf in &self.billie_sram_rf {
                                        if !crate::supports(curve, arch, self.workload) {
                                            continue;
                                        }
                                        let cfg = canonicalize(SystemConfig {
                                            curve,
                                            arch,
                                            icache,
                                            monte,
                                            billie_digit,
                                            mult_variant,
                                            gating,
                                            billie_sram_rf,
                                        });
                                        if seen.insert(cfg) {
                                            out.push(cfg);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Whether the architecture can run the curve at all: Monte is a
/// GF(p) accelerator, Billie a GF(2^m) one (the same pairings the
/// paper evaluates, and the ones `build_suite` accepts).
pub fn arch_supports_curve(arch: Arch, curve: CurveId) -> bool {
    match arch {
        Arch::Monte => !curve.is_binary(),
        Arch::Billie => curve.is_binary(),
        _ => true,
    }
}

/// Applies the per-architecture validity rules: knobs that cannot
/// influence a point are pinned to their defaults, so two configs that
/// would simulate identically collapse onto one lattice point.
///
/// * `billie_digit`/`billie_sram_rf` only vary on Billie points;
/// * `monte` front-end knobs only vary on Monte points;
/// * `gating` only varies on accelerator (Monte/Billie) points.
pub fn canonicalize(mut cfg: SystemConfig) -> SystemConfig {
    if cfg.arch != Arch::Billie {
        cfg.billie_digit = 3;
        cfg.billie_sram_rf = false;
    }
    if cfg.arch != Arch::Monte {
        cfg.monte = MonteConfig::default();
    }
    if !matches!(cfg.arch, Arch::Monte | Arch::Billie) {
        cfg.gating = Gating::None;
    }
    cfg
}

/// The silicon-area proxy of one configuration, kilo-gate-equivalents
/// (see `ule_energy::area`) — the third Pareto objective. A pure
/// function of the configuration: no simulation required.
pub fn area_kge(config: &SystemConfig) -> f64 {
    use ule_energy::area::{AreaInputs, CopArea};
    let cop = match config.arch {
        Arch::Monte => Some(CopArea::Monte),
        Arch::Billie => Some(CopArea::Billie {
            m: config.curve.nist_binary().m(),
            digit: config.billie_digit,
        }),
        _ => None,
    };
    ule_energy::area::area_kge(&AreaInputs {
        icache_size_bytes: config.icache.map(|c| c.size_bytes),
        cop,
        billie_sram_rf: config.billie_sram_rf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_pins_inapplicable_knobs() {
        let cfg = SystemConfig::new(CurveId::P192, Arch::Baseline)
            .with_billie_digit(7)
            .with_gating(Gating::Power)
            .with_billie_sram_rf(true);
        let canon = canonicalize(cfg);
        assert_eq!(canon.billie_digit, 3);
        assert_eq!(canon.gating, Gating::None);
        assert!(!canon.billie_sram_rf);
        // Billie keeps its knobs.
        let cfg = SystemConfig::new(CurveId::K163, Arch::Billie)
            .with_billie_digit(7)
            .with_gating(Gating::Power);
        assert_eq!(canonicalize(cfg), cfg);
    }

    #[test]
    fn enumeration_dedups_collapsed_points() {
        // Digit only matters on Billie: baseline x 3 digits is 1 point,
        // billie x 3 digits is 3.
        let space = SpaceSpec::new("t", Workload::ScalarMul)
            .axis(Axis::Curves(vec![CurveId::K163]))
            .axis(Axis::Archs(vec![Arch::Baseline, Arch::Billie]))
            .axis(Axis::BillieDigits(vec![2, 3, 4]));
        let points = space.enumerate().unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].arch, Arch::Baseline);
        // Canonical order: billie digits in declared order.
        let digits: Vec<usize> = points[1..].iter().map(|c| c.billie_digit).collect();
        assert_eq!(digits, vec![2, 3, 4]);
    }

    #[test]
    fn enumeration_order_is_row_major_and_stable() {
        let space = SpaceSpec::new("t", Workload::SignVerify)
            .axis(Axis::Curves(vec![CurveId::P192, CurveId::P256]))
            .axis(Axis::MultVariants(vec![
                MultVariant::Karatsuba,
                MultVariant::Parallel,
            ]));
        let points = space.enumerate().unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].curve, CurveId::P192);
        assert_eq!(points[0].mult_variant, MultVariant::Karatsuba);
        assert_eq!(points[1].mult_variant, MultVariant::Parallel);
        assert_eq!(points[2].curve, CurveId::P256);
        assert_eq!(points, space.enumerate().unwrap());
    }

    #[test]
    fn invalid_axes_are_typed_errors() {
        let space = SpaceSpec::new("t", Workload::Sign).axis(Axis::Curves(vec![]));
        assert_eq!(space.enumerate(), Err(SpaceError::EmptyAxis("curve")));

        let space = SpaceSpec::new("t", Workload::Sign)
            .axis(Axis::Icaches(vec![Some(CacheConfig::real(3000, false))]));
        assert!(matches!(
            space.enumerate(),
            Err(SpaceError::InvalidCache(_))
        ));

        let space = SpaceSpec::new("t", Workload::Sign)
            .axis(Axis::Archs(vec![Arch::Billie]))
            .axis(Axis::BillieDigits(vec![0]));
        assert_eq!(space.enumerate(), Err(SpaceError::InvalidDigit(0)));
        let space = SpaceSpec::new("t", Workload::Sign)
            .axis(Axis::Archs(vec![Arch::Billie]))
            .axis(Axis::BillieDigits(vec![17]));
        assert_eq!(space.enumerate(), Err(SpaceError::InvalidDigit(17)));
    }

    #[test]
    fn unsupported_pairings_are_skipped() {
        // Monte/P192 and Billie/K163 are valid; the cross pairings are
        // not and must vanish from the lattice rather than panic later.
        let space = SpaceSpec::new("t", Workload::ScalarMul)
            .axis(Axis::Curves(vec![CurveId::P192, CurveId::K163]))
            .axis(Axis::Archs(vec![Arch::Monte, Arch::Billie]));
        let points = space.enumerate().unwrap();
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|c| arch_supports_curve(c.arch, c.curve)));
    }

    #[test]
    fn area_proxy_is_config_monotone() {
        let base = area_kge(&SystemConfig::new(CurveId::P192, Arch::Baseline));
        let cached = area_kge(
            &SystemConfig::new(CurveId::P192, Arch::Baseline).with_icache(CacheConfig::best()),
        );
        assert!(cached > base);
        let d3 = area_kge(&SystemConfig::new(CurveId::K163, Arch::Billie));
        let d8 = area_kge(&SystemConfig::new(CurveId::K163, Arch::Billie).with_billie_digit(8));
        assert!(d8 > d3);
    }
}
