//! The design-space exploration API — the paper's primary contribution,
//! as a library.
//!
//! A [`SystemConfig`] names one point in the hardware/software spectrum
//! of Fig 1.1 (architecture × curve × instruction cache × accelerator
//! knobs); [`System::run_with`] simulates an ECDSA workload on it and
//! returns a [`RunReport`] with cycle counts, event counters, and the
//! per-component energy breakdown — the quantities behind every table
//! and figure of the paper's Chapter 7.
//!
//! ```no_run
//! use ule_core::{RunOptions, SystemConfig, System, Workload};
//! use ule_curves::params::CurveId;
//! use ule_swlib::builder::Arch;
//!
//! let system = System::new(SystemConfig::new(CurveId::P192, Arch::Baseline));
//! let report = system.run_with(RunOptions::new(Workload::SignVerify));
//! println!("{} cycles, {:.1} µJ", report.cycles, report.energy.total_uj());
//! ```
//!
//! Every run is **checked**: the simulated outputs are compared against
//! the `ule-curves` host reference before any number is reported (a run
//! that computes the wrong signature panics rather than producing a
//! plausible-looking energy figure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod metrics;
pub mod space;

use ule_billie::{Billie, BillieConfig};
use ule_curves::binary::AffinePoint2m;
use ule_curves::ecdsa::{self, Keypair, PublicKey};
use ule_curves::params::{Curve, CurveId, CurveKind};
use ule_curves::prime::AffinePoint;
use ule_curves::scalar;
use ule_energy::report::Gating;
use ule_energy::{Activity, CopActivity, CopKind, EnergyBreakdown, IcacheActivity};
use ule_monte::{Monte, MonteConfig};
use ule_mpmath::mp::Mp;
use ule_pete::cop::CopStats;
use ule_pete::cpu::{Counters, EngineTier, ExecOptions, Instrumentation, Machine, MachineConfig};
use ule_pete::icache::{CacheConfig, CacheStats};
use ule_pete::mem::MemStats;
use ule_pete::profile::RoutineProfile;
use ule_swlib::builder::{build_suite, Arch, Suite};
use ule_swlib::harness::{read_buf, run_entry, write_buf};

/// §7.8 multiplier variants (identical timing, different power — the
/// Karatsuba unit is the design point, §5.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MultVariant {
    /// The paper's multi-cycle Karatsuba unit.
    Karatsuba,
    /// A multi-cycle operand-scanning unit (+3.5 % core power, §7.8).
    OperandScan,
    /// A parallel pipelined multiplier (+13.4 % core power, §7.8).
    Parallel,
}

impl MultVariant {
    /// Core-power factor relative to the Karatsuba design point (§7.8).
    ///
    /// This is the single source of the §7.8 constants — harness code
    /// that rescales a report for a variant must use it rather than
    /// duplicating the mapping.
    pub fn factor(self) -> f64 {
        match self {
            MultVariant::Karatsuba => 1.0,
            MultVariant::OperandScan => ule_energy::constants::MULT_VARIANT_OPERAND_SCAN,
            MultVariant::Parallel => ule_energy::constants::MULT_VARIANT_PARALLEL,
        }
    }
}

/// One point in the design space.
///
/// Construct one with [`SystemConfig::new`] and refine it with the
/// `with_*` builder methods — the primary configuration API:
///
/// ```no_run
/// use ule_core::{SystemConfig, Workload};
/// use ule_curves::params::CurveId;
/// use ule_energy::report::Gating;
/// use ule_swlib::builder::Arch;
///
/// let cfg = SystemConfig::new(CurveId::K163, Arch::Billie)
///     .with_billie_digit(4)
///     .with_gating(Gating::Power);
/// ```
///
/// The fields stay `pub` for pattern matching and for existing code,
/// but new call sites should prefer the builders: they read as one
/// expression, and derived `Hash`/`Eq` make a finished config directly
/// usable as a memo-cache key (see `ule-bench`'s `SweepEngine`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// The curve (key size + field type).
    pub curve: CurveId,
    /// The hardware/software configuration.
    pub arch: Arch,
    /// Optional instruction cache (§5.3).
    pub icache: Option<CacheConfig>,
    /// Monte front-end knobs (the §7.7 double-buffer ablation).
    pub monte: MonteConfig,
    /// Billie multiplier digit width (Fig 7.14 sweep).
    pub billie_digit: usize,
    /// Multiplier power variant (§7.8).
    pub mult_variant: MultVariant,
    /// Idle-accelerator gating (the paper's §8 future-work extension).
    pub gating: Gating,
    /// Model Billie's register file in SRAM instead of flip-flops (§8
    /// future-work extension; no timing change).
    pub billie_sram_rf: bool,
}

impl SystemConfig {
    /// The standard configuration for an (arch, curve) pair.
    pub fn new(curve: CurveId, arch: Arch) -> Self {
        SystemConfig {
            curve,
            arch,
            icache: None,
            monte: MonteConfig::default(),
            billie_digit: 3,
            mult_variant: MultVariant::Karatsuba,
            gating: Gating::None,
            billie_sram_rf: false,
        }
    }

    /// Adds an instruction cache.
    pub fn with_icache(mut self, cache: CacheConfig) -> Self {
        self.icache = Some(cache);
        self
    }

    /// Sets Monte's front-end knobs (the §7.7 double-buffer ablation).
    pub fn with_monte(mut self, monte: MonteConfig) -> Self {
        self.monte = monte;
        self
    }

    /// Sets Billie's multiplier digit width (Fig 7.14 sweep).
    pub fn with_billie_digit(mut self, digit: usize) -> Self {
        self.billie_digit = digit;
        self
    }

    /// Sets the idle-accelerator gating strategy (§8 extension).
    pub fn with_gating(mut self, gating: Gating) -> Self {
        self.gating = gating;
        self
    }

    /// Sets the §7.8 multiplier power variant.
    pub fn with_mult_variant(mut self, variant: MultVariant) -> Self {
        self.mult_variant = variant;
        self
    }

    /// Models Billie's register file in SRAM instead of flip-flops (§8
    /// extension; no timing change).
    pub fn with_billie_sram_rf(mut self, sram: bool) -> Self {
        self.billie_sram_rf = sram;
        self
    }
}

/// The simulated workloads: the ECDSA suite of the paper plus the
/// RFC 7748 ladder workloads of the X25519/X448 subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// One signature (a single scalar multiplication + protocol math).
    Sign,
    /// One verification (a twin scalar multiplication + protocol math).
    Verify,
    /// Signature followed by verification — the paper's headline metric
    /// ("closely models an SSL handshake on the client side", §7.6).
    SignVerify,
    /// One `k·G` scalar multiplication only.
    ScalarMul,
    /// One field multiplication (micro-benchmark).
    FieldMul,
    /// One X25519/X448 shared-secret computation (a full Montgomery
    /// ladder). Requires an RFC 7748 curve.
    Xdh,
    /// A DTLS-style handshake flight: one ECDHE key agreement on the X
    /// curve plus an ECDSA signature *and* verification on the
    /// equivalent-security prime curve ([`CurveId::security_pair`]),
    /// both on the same architecture — the modern analogue of the
    /// paper's Sign+Verify headline metric.
    Handshake,
}

impl Workload {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Sign => "Sign",
            Workload::Verify => "Verify",
            Workload::SignVerify => "Sign+Verify",
            Workload::ScalarMul => "kG",
            Workload::FieldMul => "field mul",
            Workload::Xdh => "XDH",
            Workload::Handshake => "Handshake",
        }
    }

    /// True for the workloads that drive the Montgomery-ladder program
    /// image (and therefore need an RFC 7748 curve).
    pub fn is_ladder(self) -> bool {
        matches!(self, Workload::Xdh | Workload::Handshake)
    }
}

/// Why a `(curve, arch, workload)` triple cannot be simulated.
///
/// This is **the** validity rule: [`System::run_with`] rejects invalid
/// triples with it before building any machine, and
/// [`space::SpaceSpec::enumerate`] uses the same predicate (via
/// [`supports`]) to drop the pairings from a lattice — no call path
/// reaches the panic inside `build_suite` any more.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// An ECDSA workload was asked of an RFC 7748 (x-only) curve, which
    /// carries no Weierstrass point arithmetic or signature layer.
    EcdsaOnLadderCurve {
        /// The offending curve.
        curve: CurveId,
        /// The requested workload.
        workload: Workload,
    },
    /// A ladder workload was asked of an ECDSA curve.
    LadderOnEcdsaCurve {
        /// The offending curve.
        curve: CurveId,
        /// The requested workload.
        workload: Workload,
    },
    /// The architecture cannot run the curve's field at all (Monte is a
    /// GF(p) accelerator, Billie a GF(2^m) one).
    ArchCurveMismatch {
        /// The architecture.
        arch: Arch,
        /// The curve.
        curve: CurveId,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::EcdsaOnLadderCurve { curve, workload } => write!(
                f,
                "workload {:?} needs an ECDSA curve; {} is an RFC 7748 ladder curve \
                 (use Workload::Xdh or Workload::Handshake)",
                workload,
                curve.name()
            ),
            WorkloadError::LadderOnEcdsaCurve { curve, workload } => write!(
                f,
                "workload {:?} needs an RFC 7748 curve (X25519/X448), not {}",
                workload,
                curve.name()
            ),
            WorkloadError::ArchCurveMismatch { arch, curve } => write!(
                f,
                "{arch:?} cannot run {}: Monte accelerates GF(p), Billie GF(2^m)",
                curve.name()
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// The one-place `(curve, arch, workload)` validity check.
pub fn validate_workload(
    curve: CurveId,
    arch: Arch,
    workload: Workload,
) -> Result<(), WorkloadError> {
    if !space::arch_supports_curve(arch, curve) {
        return Err(WorkloadError::ArchCurveMismatch { arch, curve });
    }
    match (workload.is_ladder(), curve.is_mont()) {
        (true, false) => Err(WorkloadError::LadderOnEcdsaCurve { curve, workload }),
        (false, true) => Err(WorkloadError::EcdsaOnLadderCurve { curve, workload }),
        _ => Ok(()),
    }
}

/// Whether the triple is simulable (the boolean face of
/// [`validate_workload`], for lattice filtering).
pub fn supports(curve: CurveId, arch: Arch, workload: Workload) -> bool {
    validate_workload(curve, arch, workload).is_ok()
}

/// Whether a run collects the per-routine cycle profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProfileMode {
    /// Follow the global [`ule_obs::set_profiling`] flag (the default).
    #[default]
    Auto,
    /// Profile this run regardless of the flag — the report's `profile`
    /// is always `Some`.
    On,
    /// Sampled profiling: stride-based attribution that rides the fast
    /// engine instead of forcing the reference interpreter. The
    /// report's `profile` is always `Some`, with exact totals, an
    /// approximate per-routine split, and an empty call graph (see
    /// `ule_pete::profile::SampledProfiler`).
    Sampled,
    /// Never profile this run.
    Off,
}

/// Everything that varies per [`System::run_with`] call: the workload,
/// the profiling choice, and the execution-engine tier.
///
/// A [`RunReport`] is the same — bit for bit — whatever the profiling
/// mode and tier (profiling is observational; the fast engine is
/// bit-exact), so reports remain valid memo-cache values keyed only by
/// `(SystemConfig, Workload)` (see `ule-bench`'s `SweepEngine`).
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// The simulated ECDSA workload.
    pub workload: Workload,
    /// Per-routine profiling choice (default: follow the global flag).
    pub profile: ProfileMode,
    /// Execution-engine tier (default: fast when unprofiled).
    pub tier: EngineTier,
    /// Sampled-profiler stride override for this run; `None` follows
    /// `ULE_SAMPLE_STRIDE` / the built-in default. Lets A/B harnesses
    /// (e.g. `repro overhead`) hold the profiler machinery constant
    /// while varying only how often it fires.
    pub sample_stride: Option<u64>,
}

impl RunOptions {
    /// Options for a workload with default profiling and tier.
    pub fn new(workload: Workload) -> Self {
        RunOptions {
            workload,
            profile: ProfileMode::default(),
            tier: EngineTier::default(),
            sample_stride: None,
        }
    }

    /// Forces per-routine profiling on for this run.
    pub fn profiled(mut self) -> Self {
        self.profile = ProfileMode::On;
        self
    }

    /// Selects sampled profiling for this run (fast-tier eligible).
    pub fn sampled(mut self) -> Self {
        self.profile = ProfileMode::Sampled;
        self
    }

    /// Selects sampled profiling with an explicit stride (in cycles),
    /// ignoring `ULE_SAMPLE_STRIDE`. Totals are exact at any stride; an
    /// astronomically large stride yields a profiler that attaches but
    /// never fires — the ballast arm of the overhead A/B measurement.
    pub fn sampled_with_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0, "sample stride must be positive");
        self.profile = ProfileMode::Sampled;
        self.sample_stride = Some(stride);
        self
    }

    /// Overrides the execution-engine tier.
    pub fn with_tier(mut self, tier: EngineTier) -> Self {
        self.tier = tier;
        self
    }
}

/// The raw memory/cache/accelerator statistics of a run, kept whole
/// (rather than pre-reduced into [`Activity`]) so the metrics layer can
/// export every counter the simulator produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RawStats {
    /// Program-ROM traffic (word reads + cache line reads).
    pub rom: MemStats,
    /// Data-RAM traffic (Pete's port plus accelerator DMA).
    pub ram: MemStats,
    /// Instruction-cache statistics, when a cache is configured.
    pub icache: Option<CacheStats>,
    /// Accelerator statistics (all-zero without an accelerator).
    pub cop: CopStats,
}

impl RawStats {
    /// Adds another run's stats onto this one, struct by struct.
    pub fn accumulate(&mut self, other: &RawStats) {
        let RawStats {
            rom,
            ram,
            icache,
            cop,
        } = other;
        self.rom.accumulate(rom);
        self.ram.accumulate(ram);
        if let Some(ic) = icache {
            self.icache
                .get_or_insert_with(Default::default)
                .accumulate(ic);
        }
        self.cop.accumulate(cop);
    }
}

/// The result of simulating one workload on one configuration.
///
/// `PartialEq` compares every field bit-for-bit — the determinism tests
/// use it to check that parallel and serial sweeps agree exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Total cycles (summed over the workload's entry points).
    pub cycles: u64,
    /// Aggregated pipeline counters.
    pub counters: Counters,
    /// Raw memory/cache/accelerator statistics.
    pub raw: RawStats,
    /// The activity record handed to the energy model.
    pub activity: Activity,
    /// Per-component energy.
    pub energy: EnergyBreakdown,
    /// Per-routine cycle attribution, when profiling was enabled for
    /// this simulation (see [`RunOptions::profiled`]).
    pub profile: Option<RoutineProfile>,
}

impl RunReport {
    /// Wall-clock time at the 333 MHz system clock, milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.activity.time_s() * 1e3
    }

    /// Energy per operation, µJ.
    pub fn energy_uj(&self) -> f64 {
        self.energy.total_uj()
    }
}

/// A built system: curve context + program image + configuration.
pub struct System {
    config: SystemConfig,
    curve: Curve,
    suite: Suite,
}

impl System {
    /// Builds the system (curve construction + suite codegen + link).
    pub fn new(config: SystemConfig) -> Self {
        let mut sp = ule_obs::span("sys.assemble");
        sp.field("curve", config.curve.name())
            .field("arch", format!("{:?}", config.arch));
        let curve = config.curve.curve();
        let suite = build_suite(&curve, config.arch);
        System {
            config,
            curve,
            suite,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The curve context.
    pub fn curve(&self) -> &Curve {
        &self.curve
    }

    /// The built program image.
    pub fn suite(&self) -> &Suite {
        &self.suite
    }

    fn machine(&self, profile: ProfileKind) -> Machine {
        let mut mc = match self.config.arch {
            Arch::Baseline => MachineConfig::baseline(),
            _ => MachineConfig::isa_ext(),
        };
        mc.icache = self.config.icache;
        let b = Machine::builder(&self.suite.program, mc);
        let b = match self.config.arch {
            Arch::Monte => b.coprocessor(Box::new(Monte::with_config(self.config.monte))),
            Arch::Billie => b.coprocessor(Box::new(Billie::with_config(
                self.config.curve.nist_binary(),
                BillieConfig {
                    digit: self.config.billie_digit,
                },
            ))),
            _ => b,
        };
        let instr = match profile {
            ProfileKind::None => Instrumentation::none(),
            ProfileKind::Exact => Instrumentation::profile(&self.suite.program.text_symbols()),
            ProfileKind::Sampled(stride) => {
                Instrumentation::sampled_profile(&self.suite.program.text_symbols(), stride)
            }
        };
        b.instrumentation(instr).build()
    }

    /// Deterministic workload inputs shared by every configuration (so
    /// cross-architecture comparisons run the very same operation).
    fn inputs(&self) -> WorkloadInputs {
        let curve = &self.curve;
        let keys = Keypair::derive(curve, b"design-space signer");
        let e = ecdsa::hash_to_scalar(
            curve,
            b"the design space of ultra-low energy asymmetric cryptography",
        );
        let nonce = ecdsa::derive_scalar(curve, b"bench nonce", b"nonce");
        let sig = ecdsa::sign_with_nonce(curve, keys.private(), &e, &nonce)
            .expect("deterministic nonce is valid");
        WorkloadInputs {
            keys,
            e,
            nonce,
            sig,
        }
    }

    /// Runs one workload with the given options, verifying functional
    /// outputs against the host.
    ///
    /// # Panics
    ///
    /// Panics if the simulated outputs disagree with the host reference —
    /// a wrong-but-fast simulation must never produce a data point. Also
    /// panics when the options force both profiling and the fast engine
    /// tier (the fast engine carries no attribution plumbing).
    pub fn run_with(&self, opts: RunOptions) -> RunReport {
        let profile = match opts.profile {
            // The global flag is read once per run so a report is
            // internally consistent even if the flag changes
            // concurrently.
            ProfileMode::Auto if ule_obs::profiling_enabled() => ProfileKind::Exact,
            ProfileMode::Auto | ProfileMode::Off => ProfileKind::None,
            ProfileMode::On => ProfileKind::Exact,
            ProfileMode::Sampled => {
                ProfileKind::Sampled(opts.sample_stride.unwrap_or_else(sample_stride))
            }
        };
        self.run_inner(opts.workload, profile, opts.tier)
    }

    fn run_inner(&self, workload: Workload, profile: ProfileKind, tier: EngineTier) -> RunReport {
        if let Err(e) = validate_workload(self.config.curve, self.config.arch, workload) {
            panic!("{e}");
        }
        let mut total = RunAccum::default();
        if profile != ProfileKind::None {
            total.profile = Some(RoutineProfile::default());
        }
        if workload.is_ladder() {
            self.accum_xdh(profile, tier, &mut total);
            if workload == Workload::Handshake {
                // The certifying signature rides the equivalent-security
                // prime curve on the *same* architecture; its counters
                // merge into this report so the handshake is one design
                // point. The companion runs a different program image,
                // so its profile accumulates separately (sign + verify
                // share one routine table) and is then absorbed under a
                // `<curve>:` namespace.
                let pair = self.config.curve.security_pair();
                let companion = System::new(SystemConfig {
                    curve: pair,
                    ..self.config
                });
                let mut side = RunAccum::default();
                companion.accum_ecdsa(Workload::SignVerify, profile, tier, &mut side);
                total.counters.accumulate(&side.counters);
                total.raw.accumulate(&side.raw);
                if let Some(p) = side.profile {
                    total
                        .profile
                        .get_or_insert_with(RoutineProfile::default)
                        .absorb(&p, &format!("{}:", pair.name()));
                }
            }
            return total.finish(self);
        }
        self.accum_ecdsa(workload, profile, tier, &mut total);
        total.finish(self)
    }

    /// One full Montgomery ladder (`main_xdh`) with deterministic
    /// handshake inputs, checked bit-for-bit against the host ladder.
    fn accum_xdh(&self, profile: ProfileKind, tier: EngineTier, total: &mut RunAccum) {
        let k = self.suite.k;
        let mc = self.curve.mont();
        // Our static key and the peer's ephemeral key: raw (unclamped)
        // scalars, deterministic so every configuration agrees on the
        // exact operation. The peer's public u is itself a host ladder
        // from the base point — a real ECDHE pairing, so the simulated
        // shared secret can be cross-checked end to end.
        let raw_a = xdh_raw_scalar(k, 0xA11C_E000);
        let raw_b = xdh_raw_scalar(k, 0xB0B0_0000);
        let peer_u = mc.ladder(&mc.clamp(&limb_bytes(&raw_b)), mc.base_u());
        let shared = mc.ladder(&mc.clamp(&limb_bytes(&raw_a)), &peer_u);
        let mut m = self.machine(profile);
        {
            let _sp = ule_obs::span("sys.load");
            write_buf(&mut m, &self.suite.program, "arg_k", &raw_a);
            write_buf(&mut m, &self.suite.program, "arg_qx", peer_u.limbs());
        }
        self.sim_entry(&mut m, "main_xdh", tier);
        assert_eq!(
            read_buf(&m, &self.suite.program, "out_r", k),
            shared.limbs(),
            "simulated shared secret mismatch"
        );
        total.add(&mut m, self);
    }

    /// The ECDSA workload paths, accumulating into `total`.
    fn accum_ecdsa(
        &self,
        workload: Workload,
        profile: ProfileKind,
        tier: EngineTier,
        total: &mut RunAccum,
    ) {
        let k = self.suite.k;
        let inp = self.inputs();
        let d_limbs = inp.keys.private().to_limbs(k);
        let e_limbs = inp.e.to_limbs(k);
        let k_limbs = inp.nonce.to_limbs(k);
        let (qx, qy) = public_xy(&self.curve, &inp.keys.public(), k);
        match workload {
            Workload::Sign | Workload::SignVerify => {
                let mut m = self.machine(profile);
                {
                    let _sp = ule_obs::span("sys.load");
                    write_buf(&mut m, &self.suite.program, "arg_e", &e_limbs);
                    write_buf(&mut m, &self.suite.program, "arg_d", &d_limbs);
                    write_buf(&mut m, &self.suite.program, "arg_k", &k_limbs);
                }
                self.sim_entry(&mut m, "main_sign", tier);
                let r = Mp::from_limbs(&read_buf(&m, &self.suite.program, "out_r", k));
                let s = Mp::from_limbs(&read_buf(&m, &self.suite.program, "out_s", k));
                assert_eq!(r, inp.sig.r, "simulated r mismatch");
                assert_eq!(s, inp.sig.s, "simulated s mismatch");
                total.add(&mut m, self);
            }
            _ => {}
        }
        match workload {
            Workload::Verify | Workload::SignVerify => {
                let mut m = self.machine(profile);
                {
                    let _sp = ule_obs::span("sys.load");
                    write_buf(&mut m, &self.suite.program, "arg_e", &e_limbs);
                    write_buf(&mut m, &self.suite.program, "arg_r", &inp.sig.r.to_limbs(k));
                    write_buf(&mut m, &self.suite.program, "arg_s", &inp.sig.s.to_limbs(k));
                    write_buf(&mut m, &self.suite.program, "arg_qx", &qx);
                    write_buf(&mut m, &self.suite.program, "arg_qy", &qy);
                }
                self.sim_entry(&mut m, "main_verify", tier);
                assert_eq!(
                    read_buf(&m, &self.suite.program, "out_ok", 1),
                    vec![1],
                    "simulated verification rejected a valid signature"
                );
                total.add(&mut m, self);
            }
            _ => {}
        }
        if workload == Workload::ScalarMul {
            let mut m = self.machine(profile);
            write_buf(&mut m, &self.suite.program, "arg_k", &k_limbs);
            self.sim_entry(&mut m, "main_scalar_mul", tier);
            let gx = read_buf(&m, &self.suite.program, "out_r", k);
            let expect = host_mul_g(&self.curve, &inp.nonce, k);
            assert_eq!(gx, expect.0, "simulated kG mismatch");
            total.add(&mut m, self);
        }
        if workload == Workload::FieldMul {
            let mut m = self.machine(profile);
            write_buf(&mut m, &self.suite.program, "arg_qx", &qx);
            write_buf(&mut m, &self.suite.program, "arg_qy", &qy);
            self.sim_entry(&mut m, "main_fmul", tier);
            total.add(&mut m, self);
        }
    }

    /// Runs one program entry point, wrapped in a `sys.sim` span.
    fn sim_entry(&self, m: &mut Machine, entry: &'static str, tier: EngineTier) {
        let mut sp = ule_obs::span("sys.sim");
        if let Err(e) = run_entry(
            m,
            &self.suite.program,
            entry,
            ExecOptions::new(u64::MAX / 2).with_tier(tier),
        ) {
            // Post-mortem: dump the flight recorder's event tail before
            // the panic unwinds (a runaway entry is exactly the case
            // the last-N-events ring exists for).
            if matches!(e, ule_swlib::harness::RunError::CycleLimit { .. }) {
                ule_obs::flight::note_incident("cycle_limit");
            }
            panic!("{e}");
        }
        sp.field("entry", entry)
            .field("curve", self.config.curve.name())
            .field("cycles", m.cycles());
    }
}

/// The sampled profiler's stride in cycles:
/// [`ule_pete::profile::DEFAULT_SAMPLE_STRIDE`] unless overridden by
/// the `ULE_SAMPLE_STRIDE` environment variable (a positive integer;
/// anything else warns once and falls back). Smaller strides tighten
/// the per-routine split at proportionally more sampling work; totals
/// are exact at any stride.
fn sample_stride() -> u64 {
    match std::env::var("ULE_SAMPLE_STRIDE") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                ule_obs::obs_warn_once!(
                    "ULE_SAMPLE_STRIDE must be a positive integer; using the default",
                    value = v.as_str(),
                );
                ule_pete::profile::DEFAULT_SAMPLE_STRIDE
            }
        },
        Err(_) => ule_pete::profile::DEFAULT_SAMPLE_STRIDE,
    }
}

/// Resolved per-run profiling choice ([`ProfileMode`] with `Auto`
/// already folded against the global flag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProfileKind {
    None,
    Exact,
    Sampled(u64),
}

struct WorkloadInputs {
    keys: Keypair,
    e: Mp,
    nonce: Mp,
    sig: ecdsa::Signature,
}

/// Deterministic raw (unclamped) ladder scalar: `k` limbs expanded from
/// a fixed seed with splitmix64, so every configuration — and every
/// session — agrees on the exact key-agreement operation. The kernel and
/// the host clamp the same raw bits.
fn xdh_raw_scalar(k: usize, seed: u64) -> Vec<u32> {
    let mut state = seed;
    (0..k)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u32
        })
        .collect()
}

/// Little-endian byte encoding of a limb buffer (the RFC 7748 wire form
/// the host clamp consumes).
fn limb_bytes(limbs: &[u32]) -> Vec<u8> {
    limbs.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn public_xy(_curve: &Curve, public: &PublicKey, k: usize) -> (Vec<u32>, Vec<u32>) {
    match public {
        PublicKey::Prime(AffinePoint::Point { x, y }) => (x.limbs().to_vec(), y.limbs().to_vec()),
        PublicKey::Binary(AffinePoint2m::Point { x, y }) => {
            (x.limbs().to_vec(), y.limbs().to_vec())
        }
        _ => (vec![0; k], vec![0; k]),
    }
}

fn host_mul_g(curve: &Curve, s: &Mp, k: usize) -> (Vec<u32>, Vec<u32>) {
    match curve.kind() {
        CurveKind::Prime(c) => match scalar::mul_window(c, s, &c.generator()) {
            AffinePoint::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
            AffinePoint::Infinity => (vec![0; k], vec![0; k]),
        },
        CurveKind::Binary(c) => match scalar::mul_window(c, s, &c.generator()) {
            AffinePoint2m::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
            AffinePoint2m::Infinity => (vec![0; k], vec![0; k]),
        },
        CurveKind::Mont(_) => unreachable!("ECDSA workloads are validated off ladder curves"),
    }
}

/// Accumulates counters/stats across the entry points of a workload.
#[derive(Default)]
struct RunAccum {
    counters: Counters,
    raw: RawStats,
    profile: Option<RoutineProfile>,
}

impl RunAccum {
    fn add(&mut self, m: &mut Machine, _sys: &System) {
        self.counters.accumulate(&m.counters());
        self.raw.accumulate(&RawStats {
            rom: m.rom_stats(),
            ram: m.ram_stats(),
            icache: m.icache_stats(),
            cop: m.cop_stats(),
        });
        if let Some(p) = m.take_profile() {
            self.profile
                .get_or_insert_with(RoutineProfile::default)
                .merge(&p);
        }
    }

    fn finish(self, sys: &System) -> RunReport {
        let _sp = ule_obs::span("sys.energy");
        let cycles = self.counters.cycles;
        let raw = self.raw;
        let activity = Activity {
            cycles,
            busy_cycles: cycles.saturating_sub(self.counters.stall_cycles),
            stall_cycles: self.counters.stall_cycles,
            mult_active_cycles: self.counters.mult_active_cycles,
            mult_variant_factor: sys.config.mult_variant.factor(),
            rom_word_reads: raw.rom.reads,
            rom_line_reads: raw.rom.line_reads,
            ram_reads: raw.ram.reads,
            ram_writes: raw.ram.writes,
            icache: sys.config.icache.map(|c| IcacheActivity {
                size_bytes: c.size_bytes,
                accesses: raw.icache.map(|ic| ic.accesses).unwrap_or(0),
                fills: raw.icache.map(|ic| ic.fills).unwrap_or(0),
            }),
            cop: match sys.config.arch {
                Arch::Monte => Some(CopActivity {
                    kind: CopKind::Monte,
                    busy_cycles: raw.cop.busy_cycles,
                    dma_cycles: raw.cop.dma_cycles,
                    // 3 scratch accesses per busy cycle (2 reads + 1
                    // write on average through the CIOS inner loops).
                    scratch_accesses: 3 * raw.cop.busy_cycles,
                    gating: sys.config.gating,
                    sram_register_file: false,
                }),
                Arch::Billie => Some(CopActivity {
                    kind: CopKind::Billie {
                        m: sys.config.curve.nist_binary().m(),
                    },
                    busy_cycles: raw.cop.busy_cycles,
                    dma_cycles: raw.cop.dma_cycles,
                    scratch_accesses: 0,
                    gating: sys.config.gating,
                    sram_register_file: sys.config.billie_sram_rf,
                }),
                _ => None,
            },
        };
        let energy = ule_energy::report::energy(&activity);
        RunReport {
            cycles,
            counters: self.counters,
            raw,
            activity,
            energy,
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_on_p192_baseline() {
        let sys = System::new(SystemConfig::new(CurveId::P192, Arch::Baseline));
        let r = sys.run_with(RunOptions::new(Workload::SignVerify));
        assert!(r.cycles > 100_000);
        assert!(r.energy_uj() > 0.0);
        assert!(r.time_ms() > 0.0);
    }

    /// The memo invariant extends to sampled profiling: a sampled run's
    /// report is bit-identical to an unprofiled one in every simulated
    /// quantity, and the sampled profile's totals equal the headline
    /// counters exactly (across the workload's merged entry points).
    #[test]
    fn sampled_profile_preserves_report_and_sums_exactly() {
        let sys = System::new(SystemConfig::new(CurveId::P192, Arch::IsaExt));
        let plain = sys.run_with(RunOptions::new(Workload::SignVerify));
        let sampled = sys.run_with(RunOptions::new(Workload::SignVerify).sampled());
        assert_eq!(plain.cycles, sampled.cycles);
        assert_eq!(plain.counters, sampled.counters);
        assert_eq!(plain.raw, sampled.raw);
        assert_eq!(plain.activity, sampled.activity);
        assert_eq!(plain.energy, sampled.energy);
        let p = sampled.profile.as_ref().expect("sampled run sets profile");
        assert_eq!(p.total_cycles(), sampled.cycles);
        assert_eq!(p.total_instructions(), sampled.counters.instructions);
        assert!(
            p.calls.nodes.is_empty(),
            "sampled profile has no call graph"
        );
        // Attributed energy conserves bit-for-bit, same as the exact
        // profiler (the residual fix-up in `EnergyBreakdown::attribute`
        // operates on exact totals).
        let att = sampled.energy.attribute(&attr::routine_activities(p));
        assert_eq!(
            att.total_uj().to_bits(),
            sampled.energy.total_uj().to_bits()
        );
    }

    /// A stride too large to ever fire still attaches the profiler
    /// (identical allocation behaviour to a live one — the overhead
    /// harness's ballast arm) and still reports exact totals.
    #[test]
    fn sampled_stride_override_never_fires_but_totals_exact() {
        let sys = System::new(SystemConfig::new(CurveId::P192, Arch::IsaExt));
        let plain = sys.run_with(RunOptions::new(Workload::Sign));
        let ballast = sys.run_with(RunOptions::new(Workload::Sign).sampled_with_stride(1 << 40));
        assert_eq!(plain.cycles, ballast.cycles);
        assert_eq!(plain.counters, ballast.counters);
        assert_eq!(plain.energy, ballast.energy);
        let p = ballast.profile.as_ref().expect("profile present");
        assert_eq!(p.total_cycles(), ballast.cycles);
        assert_eq!(p.total_instructions(), ballast.counters.instructions);
    }

    #[test]
    fn xdh_and_handshake_run_on_the_ladder_curves() {
        for curve in [CurveId::X25519, CurveId::X448] {
            for arch in [Arch::Baseline, Arch::Monte] {
                let sys = System::new(SystemConfig::new(curve, arch));
                let x = sys.run_with(RunOptions::new(Workload::Xdh));
                assert!(x.cycles > 100_000, "{curve:?} {arch:?}");
                assert!(x.energy_uj() > 0.0);
                let h = sys.run_with(RunOptions::new(Workload::Handshake));
                assert!(
                    h.cycles > x.cycles,
                    "{curve:?} {arch:?}: the handshake adds the certifying ECDSA flight"
                );
                assert!(h.energy_uj() > x.energy_uj());
            }
        }
    }

    #[test]
    fn monte_accelerates_the_ladder() {
        let base = System::new(SystemConfig::new(CurveId::X25519, Arch::Baseline))
            .run_with(RunOptions::new(Workload::Xdh));
        let monte = System::new(SystemConfig::new(CurveId::X25519, Arch::Monte))
            .run_with(RunOptions::new(Workload::Xdh));
        assert!(
            monte.cycles * 4 < base.cycles,
            "monte {} !<< base {}",
            monte.cycles,
            base.cycles
        );
    }

    #[test]
    fn workload_validity_is_a_typed_error() {
        assert_eq!(
            validate_workload(CurveId::X25519, Arch::Baseline, Workload::Sign),
            Err(WorkloadError::EcdsaOnLadderCurve {
                curve: CurveId::X25519,
                workload: Workload::Sign,
            })
        );
        assert_eq!(
            validate_workload(CurveId::P192, Arch::Baseline, Workload::Xdh),
            Err(WorkloadError::LadderOnEcdsaCurve {
                curve: CurveId::P192,
                workload: Workload::Xdh,
            })
        );
        assert_eq!(
            validate_workload(CurveId::X25519, Arch::Billie, Workload::Xdh),
            Err(WorkloadError::ArchCurveMismatch {
                arch: Arch::Billie,
                curve: CurveId::X25519,
            })
        );
        assert_eq!(
            validate_workload(CurveId::K163, Arch::Billie, Workload::Handshake),
            Err(WorkloadError::LadderOnEcdsaCurve {
                curve: CurveId::K163,
                workload: Workload::Handshake,
            })
        );
        assert!(validate_workload(CurveId::X448, Arch::Monte, Workload::Handshake).is_ok());
        assert!(validate_workload(CurveId::X25519, Arch::IsaExt, Workload::Xdh).is_ok());
    }

    #[test]
    #[should_panic(expected = "RFC 7748 ladder curve")]
    fn ecdsa_on_a_ladder_curve_panics_with_the_typed_message() {
        System::new(SystemConfig::new(CurveId::X25519, Arch::Baseline))
            .run_with(RunOptions::new(Workload::SignVerify));
    }

    #[test]
    fn isa_ext_beats_baseline_on_p192() {
        let base = System::new(SystemConfig::new(CurveId::P192, Arch::Baseline))
            .run_with(RunOptions::new(Workload::ScalarMul));
        let ext = System::new(SystemConfig::new(CurveId::P192, Arch::IsaExt))
            .run_with(RunOptions::new(Workload::ScalarMul));
        assert!(
            ext.cycles < base.cycles,
            "ext {} !< base {}",
            ext.cycles,
            base.cycles
        );
        assert!(ext.energy_uj() < base.energy_uj());
    }
}
