//! Bridging profiler output to the energy-attribution model and the
//! export formats (folded flamegraph stacks, Chrome trace events).
//!
//! `ule-energy` cannot depend on the simulator, so its
//! [`RoutineActivity`] input type is decoupled from
//! `ule_pete::profile`; this module converts — flat buckets for the
//! per-routine tables, call-tree nodes for path-weighted flamegraphs —
//! and renders the paper-style per-routine energy table.

use ule_energy::constants::CLOCK_NS;
use ule_energy::report::{EnergyBreakdown, RoutineActivity, RoutineEnergyAttribution};
use ule_obs::trace_events::TraceEventsBuf;
use ule_pete::profile::{ActivitySlice, CallNode, RoutineCycles, RoutineProfile, ROOT};

fn to_activity(name: String, instructions: u64, cycles: u64, a: &ActivitySlice) -> RoutineActivity {
    // Exhaustive: a new profiler counter must be mapped (or explicitly
    // dropped) here, matching the workspace accumulate() convention.
    let ActivitySlice {
        rom_reads,
        rom_line_reads,
        ram_reads,
        ram_writes,
        icache_accesses,
        icache_misses,
        cop_mul_ops,
        cop_ls_ops,
    } = *a;
    RoutineActivity {
        name,
        cycles,
        instructions,
        rom_reads,
        rom_line_reads,
        ram_reads,
        ram_writes,
        icache_accesses,
        icache_misses,
        cop_mul_ops,
        cop_ls_ops,
    }
}

/// The flat per-routine activity slices, in reporting order (cycles
/// descending, then name) — the input to
/// [`EnergyBreakdown::attribute`] for the paper-style tables.
pub fn routine_activities(p: &RoutineProfile) -> Vec<RoutineActivity> {
    p.sorted_routines()
        .into_iter()
        .map(|r| {
            let RoutineCycles {
                name,
                start: _,
                instructions,
                cycles,
                activity,
            } = r;
            to_activity(name.clone(), *instructions, *cycles, activity)
        })
        .collect()
}

/// Per-call-path activity slices (exclusive counters), one per call
/// tree node in creation order; names are `;`-joined paths.
pub fn call_path_activities(p: &RoutineProfile) -> Vec<RoutineActivity> {
    p.call_paths()
        .into_iter()
        .map(|(path, n)| to_activity(path, n.instructions, n.cycles, &n.activity))
        .collect()
}

/// The weight a flamegraph stack carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlameWeight {
    /// Exclusive simulated cycles (exact).
    Cycles,
    /// Attributed energy in nanojoules (rounded per stack; the exact
    /// conservation invariant lives in µJ at the attribution layer).
    NanoJoules,
}

/// The call tree as folded flamegraph stacks: `(path, weight)` per
/// node, weighted by exclusive cycles or attributed nanojoules.
/// `prefix` (e.g. the design-point label) is prepended as the root
/// frame of every stack when non-empty.
pub fn folded_stacks(
    p: &RoutineProfile,
    energy: &EnergyBreakdown,
    weight: FlameWeight,
    prefix: &str,
) -> Vec<(String, u64)> {
    let paths = p.call_paths();
    let weights: Vec<u64> = match weight {
        FlameWeight::Cycles => paths.iter().map(|(_, n)| n.cycles).collect(),
        FlameWeight::NanoJoules => {
            if paths.is_empty() {
                Vec::new()
            } else {
                let att = energy.attribute(&call_path_activities(p));
                att.routines
                    .iter()
                    .map(|r| (r.total_uj * 1e3).max(0.0).round() as u64)
                    .collect()
            }
        }
    };
    paths
        .into_iter()
        .zip(weights)
        .map(|((path, _), w)| {
            let full = if prefix.is_empty() {
                path
            } else {
                format!("{prefix};{path}")
            };
            (full, w)
        })
        .collect()
}

/// Appends one design point's call tree to a trace-event file as a
/// synthetic timeline under process `pid`: each node is a complete
/// event spanning its inclusive cycles, children nested after the
/// parent's exclusive share, 1 simulated cycle = `CLOCK_NS` ns of
/// trace time. Deterministic — a pure function of the profile.
pub fn trace_events_into(buf: &mut TraceEventsBuf, pid: u64, label: &str, p: &RoutineProfile) {
    buf.process_name(pid, label);
    buf.thread_name(pid, 1, "shadow call stack");
    let nodes = &p.calls.nodes;
    let inclusive = p.calls.inclusive_cycles();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.parent == ROOT {
            roots.push(i);
        } else {
            children[n.parent as usize].push(i);
        }
    }
    let us = |cycles: u64| cycles as f64 * CLOCK_NS * 1e-3;
    // Iterative DFS carrying each node's synthetic start cycle: a node
    // spans its inclusive cycles; its children start after its own
    // exclusive share, laid out sequentially.
    let mut stack: Vec<(usize, u64)> = Vec::new();
    let mut cursor = 0u64;
    for &r in &roots {
        stack.push((r, cursor));
        cursor += inclusive[r];
    }
    // Preserve sibling order when popping.
    stack.reverse();
    while let Some((i, start)) = stack.pop() {
        let node: &CallNode = &nodes[i];
        let name = &p.routines[node.routine as usize].name;
        buf.complete(
            pid,
            1,
            name,
            us(start),
            us(inclusive[i]),
            &[
                ("cycles", node.cycles),
                ("cycles_incl", inclusive[i]),
                ("instructions", node.instructions),
            ],
        );
        let mut child_start = start + node.cycles;
        let first_child = stack.len();
        for &c in &children[i] {
            stack.push((c, child_start));
            child_start += inclusive[c];
        }
        stack[first_child..].reverse();
    }
}

/// Renders the paper-style per-routine energy table (Ch. 6 style):
/// attributed energy next to exclusive cycles and the driving
/// counters, routines in reporting order, `top` rows (0 = all) plus an
/// aggregated remainder and an exact total row.
pub fn routine_energy_table(p: &RoutineProfile, energy: &EnergyBreakdown, top: usize) -> String {
    let acts = routine_activities(p);
    let att: RoutineEnergyAttribution = energy.attribute(&acts);
    let total_cycles = p.total_cycles().max(1);
    let total_uj = att.total_uj();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>6} {:>9} {:>9} {:>10} {:>6}\n",
        "routine", "instrs", "cycles", "cyc%", "rom", "ram", "energy_uj", "en%"
    ));
    let shown = if top == 0 {
        acts.len()
    } else {
        top.min(acts.len())
    };
    let mut rest = RoutineActivity {
        name: "(other)".to_owned(),
        ..Default::default()
    };
    let mut rest_uj = 0.0;
    for (i, (a, e)) in acts.iter().zip(&att.routines).enumerate() {
        if i < shown {
            out.push_str(&format!(
                "{:<26} {:>12} {:>12} {:>6.2} {:>9} {:>9} {:>10.4} {:>6.2}\n",
                a.name,
                a.instructions,
                a.cycles,
                100.0 * a.cycles as f64 / total_cycles as f64,
                a.rom_reads,
                a.ram_reads + a.ram_writes,
                e.total_uj,
                100.0 * e.total_uj / total_uj,
            ));
        } else {
            rest.instructions += a.instructions;
            rest.cycles += a.cycles;
            rest.rom_reads += a.rom_reads;
            rest.ram_reads += a.ram_reads;
            rest.ram_writes += a.ram_writes;
            rest_uj += e.total_uj;
        }
    }
    if shown < acts.len() {
        out.push_str(&format!(
            "{:<26} {:>12} {:>12} {:>6.2} {:>9} {:>9} {:>10.4} {:>6.2}\n",
            format!("(other: {} routines)", acts.len() - shown),
            rest.instructions,
            rest.cycles,
            100.0 * rest.cycles as f64 / total_cycles as f64,
            rest.rom_reads,
            rest.ram_reads + rest.ram_writes,
            rest_uj,
            100.0 * rest_uj / total_uj,
        ));
    }
    out.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>6.2} {:>9} {:>9} {:>10.4} {:>6.2}\n",
        "total",
        p.total_instructions(),
        p.total_cycles(),
        100.0,
        acts.iter().map(|a| a.rom_reads).sum::<u64>(),
        acts.iter().map(|a| a.ram_reads + a.ram_writes).sum::<u64>(),
        total_uj,
        100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunOptions, System, SystemConfig, Workload};
    use ule_curves::params::CurveId;
    use ule_obs::trace_events::validate_trace_events;
    use ule_swlib::builder::Arch;

    fn profiled_p192_sign() -> crate::RunReport {
        let cfg = SystemConfig::new(CurveId::P192, Arch::IsaExt);
        System::new(cfg).run_with(RunOptions::new(Workload::Sign).profiled())
    }

    #[test]
    fn flat_activities_cover_raw_stats() {
        let rep = profiled_p192_sign();
        let p = rep.profile.as_ref().unwrap();
        let acts = routine_activities(p);
        let rom: u64 = acts.iter().map(|a| a.rom_reads).sum();
        let ram_r: u64 = acts.iter().map(|a| a.ram_reads).sum();
        let ram_w: u64 = acts.iter().map(|a| a.ram_writes).sum();
        assert_eq!(rom, rep.raw.rom.reads);
        assert_eq!(ram_r, rep.raw.ram.reads);
        assert_eq!(ram_w, rep.raw.ram.writes);
    }

    #[test]
    fn folded_stacks_conserve_cycles() {
        let rep = profiled_p192_sign();
        let p = rep.profile.as_ref().unwrap();
        let stacks = folded_stacks(p, &rep.energy, FlameWeight::Cycles, "p192");
        let total: u64 = stacks.iter().map(|(_, w)| w).sum();
        assert_eq!(total, rep.cycles);
        assert!(stacks.iter().all(|(s, _)| s.starts_with("p192;")));
        // nJ weights round per stack but must land within rounding
        // distance of the true total.
        let nj = folded_stacks(p, &rep.energy, FlameWeight::NanoJoules, "");
        let total_nj: u64 = nj.iter().map(|(_, w)| w).sum();
        let want_nj = rep.energy.total_uj() * 1e3;
        assert!(
            (total_nj as f64 - want_nj).abs() <= nj.len() as f64,
            "{total_nj} vs {want_nj}"
        );
    }

    #[test]
    fn trace_events_validate_and_span_the_run() {
        let rep = profiled_p192_sign();
        let p = rep.profile.as_ref().unwrap();
        let mut buf = TraceEventsBuf::new();
        trace_events_into(&mut buf, 7, "P-192/isa_ext/sign", p);
        let s = buf.finish();
        let stats = validate_trace_events(&s).unwrap();
        assert_eq!(stats.complete_events, p.calls.nodes.len());
        assert_eq!(stats.metadata_events, 2);
    }

    #[test]
    fn energy_table_totals_are_exact() {
        let rep = profiled_p192_sign();
        let p = rep.profile.as_ref().unwrap();
        let table = routine_energy_table(p, &rep.energy, 10);
        let total_line = table.lines().last().unwrap();
        assert!(table.contains("(other:"), "{table}");
        assert!(total_line.starts_with("total"), "{total_line}");
        // The attribution total is bit-exact; the table formats it.
        let att = rep.energy.attribute(&routine_activities(p));
        assert_eq!(att.total_uj().to_bits(), rep.energy.total_uj().to_bits());
    }
}
