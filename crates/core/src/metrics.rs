//! Flattening [`RunReport`]s into versioned metrics records.
//!
//! [`design_point_record`] turns one `(config, workload, report)` into
//! one flat [`Record`] — the JSONL line behind `repro --metrics-out`.
//! Every counter struct the simulator produces is destructured
//! **exhaustively** (no `..` patterns): adding a field to
//! `pete::Counters`, `MemStats`, `CacheStats`, or `CopStats` without
//! exporting it here is a compile error, not a silently-dropped
//! counter. The exact key set is pinned by the golden-file test in
//! `ule-bench`.

use crate::{MultVariant, RawStats, RunReport, SystemConfig, Workload};
use ule_energy::report::{Component, EnergyBreakdown, Gating, RoutineActivity};
use ule_obs::json::JsonBuf;
use ule_obs::record::Record;
use ule_pete::cop::CopStats;
use ule_pete::cpu::Counters;
use ule_pete::icache::CacheStats;
use ule_pete::mem::MemStats;
use ule_pete::profile::RoutineProfile;
use ule_swlib::builder::Arch;

/// Stable identifier for an architecture.
pub fn arch_key(a: Arch) -> &'static str {
    match a {
        Arch::Baseline => "baseline",
        Arch::IsaExt => "isa_ext",
        Arch::Monte => "monte",
        Arch::Billie => "billie",
    }
}

/// Stable identifier for a §7.8 multiplier variant.
pub fn mult_variant_key(v: MultVariant) -> &'static str {
    match v {
        MultVariant::Karatsuba => "karatsuba",
        MultVariant::OperandScan => "operand_scan",
        MultVariant::Parallel => "parallel",
    }
}

/// Stable identifier for a gating strategy.
pub fn gating_key(g: Gating) -> &'static str {
    match g {
        Gating::None => "none",
        Gating::Clock => "clock",
        Gating::Power => "power",
    }
}

/// Stable identifier for a workload.
pub fn workload_key(w: Workload) -> &'static str {
    match w {
        Workload::Sign => "sign",
        Workload::Verify => "verify",
        Workload::SignVerify => "sign_verify",
        Workload::ScalarMul => "scalar_mul",
        Workload::FieldMul => "field_mul",
        Workload::Xdh => "xdh",
        Workload::Handshake => "handshake",
    }
}

/// The record keys that identify a design point. Two records with
/// equal values for all of these describe the same configuration ×
/// workload; `repro diff` joins on them, and the explorer's journal
/// resume matches persisted points against the lattice with them.
pub const IDENTITY_KEYS: [&str; 15] = [
    "curve",
    "arch",
    "workload",
    "icache_present",
    "icache_size_bytes",
    "icache_prefetch",
    "icache_ideal",
    "icache_miss_penalty",
    "monte_double_buffer",
    "monte_forwarding",
    "monte_queue_depth",
    "billie_digit",
    "mult_variant",
    "gating",
    "billie_sram_rf",
];

/// The canonical identity string of one design point: every
/// [`IDENTITY_KEYS`] entry as `key=value|`, in key order, with values
/// formatted exactly as they round-trip through a serialized
/// [`design_point_record`] (so an identity built from a live config and
/// one re-parsed from a journal line compare equal byte-for-byte).
pub fn config_identity(config: &SystemConfig, workload: Workload) -> String {
    let SystemConfig {
        curve,
        arch,
        icache,
        monte,
        billie_digit,
        mult_variant,
        gating,
        billie_sram_rf,
    } = *config;
    let mut s = String::new();
    let mut kv = |k: &str, v: &str| {
        s.push_str(k);
        s.push('=');
        s.push_str(v);
        s.push('|');
    };
    kv("curve", curve.name());
    kv("arch", arch_key(arch));
    kv("workload", workload_key(workload));
    kv(
        "icache_present",
        if icache.is_some() { "true" } else { "false" },
    );
    kv(
        "icache_size_bytes",
        &icache.map(|c| c.size_bytes as u64).unwrap_or(0).to_string(),
    );
    kv(
        "icache_prefetch",
        if icache.map(|c| c.prefetch).unwrap_or(false) {
            "true"
        } else {
            "false"
        },
    );
    kv(
        "icache_ideal",
        if icache.map(|c| c.ideal).unwrap_or(false) {
            "true"
        } else {
            "false"
        },
    );
    kv(
        "icache_miss_penalty",
        &icache
            .map(|c| c.miss_penalty as u64)
            .unwrap_or(0)
            .to_string(),
    );
    kv(
        "monte_double_buffer",
        if monte.double_buffer { "true" } else { "false" },
    );
    kv(
        "monte_forwarding",
        if monte.forwarding { "true" } else { "false" },
    );
    kv("monte_queue_depth", &(monte.queue_depth as u64).to_string());
    kv("billie_digit", &(billie_digit as u64).to_string());
    kv("mult_variant", mult_variant_key(mult_variant));
    kv("gating", gating_key(gating));
    kv(
        "billie_sram_rf",
        if billie_sram_rf { "true" } else { "false" },
    );
    s
}

/// Flattens one design point (config + workload + simulation report)
/// into a `design_point` record — one JSONL line of `--metrics-out`.
pub fn design_point_record(
    config: &SystemConfig,
    workload: Workload,
    report: &RunReport,
) -> Record {
    let mut r = Record::new("design_point");

    // Configuration. Exhaustive: a new config knob must be exported.
    let SystemConfig {
        curve,
        arch,
        icache,
        monte,
        billie_digit,
        mult_variant,
        gating,
        billie_sram_rf,
    } = *config;
    r.push("curve", curve.name());
    r.push("arch", arch_key(arch));
    r.push("workload", workload_key(workload));
    r.push("icache_present", icache.is_some());
    r.push(
        "icache_size_bytes",
        icache.map(|c| c.size_bytes as u64).unwrap_or(0),
    );
    r.push(
        "icache_prefetch",
        icache.map(|c| c.prefetch).unwrap_or(false),
    );
    r.push("icache_ideal", icache.map(|c| c.ideal).unwrap_or(false));
    r.push(
        "icache_miss_penalty",
        icache.map(|c| c.miss_penalty as u64).unwrap_or(0),
    );
    r.push("monte_double_buffer", monte.double_buffer);
    r.push("monte_forwarding", monte.forwarding);
    r.push("monte_queue_depth", monte.queue_depth as u64);
    r.push("billie_digit", billie_digit as u64);
    r.push("mult_variant", mult_variant_key(mult_variant));
    r.push("gating", gating_key(gating));
    r.push("billie_sram_rf", billie_sram_rf);

    // Headline results (area is a pure function of the config — the
    // third objective of the `ule-dse` Pareto frontiers).
    r.push("cycles", report.cycles);
    r.push("time_ms", report.time_ms());
    r.push("energy_uj", report.energy_uj());
    r.push("area_kge", crate::space::area_kge(config));

    // Pipeline counters. Exhaustive.
    let Counters {
        instructions,
        cycles: counter_cycles,
        stall_cycles,
        load_use_stalls,
        branches,
        mispredicts,
        mult_active_cycles,
        mult_stalls,
        mult_ops,
        div_ops,
        cop2_ops,
        cop2_stalls,
        fetches,
    } = report.counters;
    r.push("pete_instructions", instructions);
    r.push("pete_cycles", counter_cycles);
    r.push("pete_stall_cycles", stall_cycles);
    r.push("pete_load_use_stalls", load_use_stalls);
    r.push("pete_branches", branches);
    r.push("pete_mispredicts", mispredicts);
    r.push("pete_mult_active_cycles", mult_active_cycles);
    r.push("pete_mult_stalls", mult_stalls);
    r.push("pete_mult_ops", mult_ops);
    r.push("pete_div_ops", div_ops);
    r.push("pete_cop2_ops", cop2_ops);
    r.push("pete_cop2_stalls", cop2_stalls);
    r.push("pete_fetches", fetches);

    // Memory, cache, and accelerator stats. Exhaustive.
    let RawStats {
        rom,
        ram,
        icache: icache_stats,
        cop,
    } = report.raw;
    let MemStats {
        reads: rom_reads,
        writes: rom_writes,
        line_reads: rom_line_reads,
    } = rom;
    r.push("rom_reads", rom_reads);
    r.push("rom_writes", rom_writes);
    r.push("rom_line_reads", rom_line_reads);
    let MemStats {
        reads: ram_reads,
        writes: ram_writes,
        line_reads: ram_line_reads,
    } = ram;
    r.push("ram_reads", ram_reads);
    r.push("ram_writes", ram_writes);
    r.push("ram_line_reads", ram_line_reads);
    let CacheStats {
        accesses,
        misses,
        prefetch_hits,
        rom_line_reads: icache_rom_line_reads,
        fills,
        stall_cycles: icache_stall_cycles,
    } = icache_stats.unwrap_or_default();
    r.push("icache_accesses", accesses);
    r.push("icache_misses", misses);
    r.push("icache_prefetch_hits", prefetch_hits);
    r.push("icache_rom_line_reads", icache_rom_line_reads);
    r.push("icache_fills", fills);
    r.push("icache_stall_cycles", icache_stall_cycles);
    let CopStats {
        busy_cycles,
        dma_cycles,
        instructions: cop_instructions,
        ram_reads: cop_ram_reads,
        ram_writes: cop_ram_writes,
        ucode_reads,
        mul_ops: cop_mul_ops,
        ls_ops,
    } = cop;
    r.push("cop_busy_cycles", busy_cycles);
    r.push("cop_dma_cycles", dma_cycles);
    r.push("cop_instructions", cop_instructions);
    r.push("cop_ram_reads", cop_ram_reads);
    r.push("cop_ram_writes", cop_ram_writes);
    r.push("cop_ucode_reads", ucode_reads);
    r.push("cop_mul_ops", cop_mul_ops);
    r.push("cop_ls_ops", ls_ops);

    // Per-component energy, every component always present (zero when
    // the component is absent from this configuration).
    for c in [
        Component::PeteCore,
        Component::Rom,
        Component::Ram,
        Component::Uncore,
        Component::Monte,
        Component::Billie,
    ] {
        r.push(
            &format!("energy_{}_uj", c.key()),
            report.energy.component_uj(c),
        );
    }
    r.push("energy_static_fraction", report.energy.static_fraction());

    // Per-routine cycle profile (present only on profiled runs, as a
    // nested array — the one non-flat field, pinned separately).
    if let Some(p) = &report.profile {
        r.push(
            "profile",
            ule_obs::Value::Raw(profile_json(p, &report.energy)),
        );
    }
    r
}

/// Serializes a routine profile as a JSON array of bucket objects:
/// one per routine in reporting order (cycles descending, then name),
/// carrying the activity counters and the attributed energy (schema
/// v2). The `energy_uj` fields sum bit-exactly to the headline
/// `energy_uj` of the enclosing record.
pub fn profile_json(p: &RoutineProfile, energy: &EnergyBreakdown) -> String {
    let acts = crate::attr::routine_activities(p);
    let att = energy.attribute(&acts);
    let mut b = JsonBuf::new();
    b.begin_array();
    for (a, e) in acts.iter().zip(&att.routines) {
        // Exhaustive: every activity counter is exported.
        let RoutineActivity {
            name,
            cycles,
            instructions,
            rom_reads,
            rom_line_reads,
            ram_reads,
            ram_writes,
            icache_accesses,
            icache_misses,
            cop_mul_ops,
            cop_ls_ops,
        } = a;
        b.begin_object();
        b.key("name").value_str(name);
        b.key("instructions").value_u64(*instructions);
        b.key("cycles").value_u64(*cycles);
        b.key("rom_reads").value_u64(*rom_reads);
        b.key("rom_line_reads").value_u64(*rom_line_reads);
        b.key("ram_reads").value_u64(*ram_reads);
        b.key("ram_writes").value_u64(*ram_writes);
        b.key("icache_accesses").value_u64(*icache_accesses);
        b.key("icache_misses").value_u64(*icache_misses);
        b.key("cop_mul_ops").value_u64(*cop_mul_ops);
        b.key("cop_ls_ops").value_u64(*cop_ls_ops);
        b.key("energy_uj").value_f64(e.total_uj);
        b.end_object();
    }
    b.end_array();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunOptions, System, Workload};
    use ule_curves::params::CurveId;
    use ule_obs::json::is_valid;

    #[test]
    fn design_point_record_is_flat_valid_json() {
        let cfg = SystemConfig::new(CurveId::P192, Arch::Baseline);
        let report = System::new(cfg).run_with(RunOptions::new(Workload::FieldMul));
        let rec = design_point_record(&cfg, Workload::FieldMul, &report);
        let line = rec.to_json();
        assert!(is_valid(&line), "{line}");
        assert_eq!(rec.get("curve"), Some(&ule_obs::Value::Str("P-192".into())));
        assert_eq!(rec.get("cycles"), Some(&ule_obs::Value::U64(report.cycles)));
        // Non-profiled run: no profile field.
        assert!(rec.get("profile").is_none());
    }

    #[test]
    fn config_identity_matches_serialized_record_round_trip() {
        // The identity built from the live config must equal the one a
        // journal/diff reader reconstructs from the serialized record.
        let cfg = SystemConfig::new(CurveId::K163, Arch::Billie)
            .with_billie_digit(5)
            .with_billie_sram_rf(true);
        let report = System::new(cfg).run_with(RunOptions::new(Workload::ScalarMul));
        let rec = design_point_record(&cfg, Workload::ScalarMul, &report);
        let doc = ule_obs::json::parse(&rec.to_json()).unwrap();
        let mut reparsed = String::new();
        for key in IDENTITY_KEYS {
            let v = doc.get(key).unwrap();
            let s = match v {
                ule_obs::json::Json::Bool(b) => b.to_string(),
                ule_obs::json::Json::U64(n) => n.to_string(),
                ule_obs::json::Json::Str(s) => s.clone(),
                other => panic!("unexpected identity value {other:?}"),
            };
            reparsed.push_str(&format!("{key}={s}|"));
        }
        assert_eq!(config_identity(&cfg, Workload::ScalarMul), reparsed);
    }

    #[test]
    fn profiled_record_profile_is_sorted_and_energy_conserving() {
        let cfg = SystemConfig::new(CurveId::P192, Arch::IsaExt);
        let report = System::new(cfg).run_with(RunOptions::new(Workload::FieldMul).profiled());
        let rec = design_point_record(&cfg, Workload::FieldMul, &report);
        let line = rec.to_json();
        assert!(is_valid(&line), "{line}");
        let doc = ule_obs::json::parse(&line).unwrap();
        let prof = doc.get("profile").unwrap().as_array().unwrap();
        assert!(!prof.is_empty());
        // Sorted: cycles descending, then name ascending.
        let keys: Vec<(u64, String)> = prof
            .iter()
            .map(|e| {
                (
                    e.get("cycles").unwrap().as_u64().unwrap(),
                    e.get("name").unwrap().as_str().unwrap().to_owned(),
                )
            })
            .collect();
        for w in keys.windows(2) {
            assert!(
                w[1].0 < w[0].0 || (w[1].0 == w[0].0 && w[1].1 > w[0].1),
                "not sorted: {w:?}"
            );
        }
        // Attributed energy sums to the headline total (parse-level
        // check; the bit-exact invariant is tested in ule-energy).
        let total: f64 = prof
            .iter()
            .map(|e| e.get("energy_uj").unwrap().as_f64().unwrap())
            .sum();
        let headline = doc.get("energy_uj").unwrap().as_f64().unwrap();
        assert!(
            (total - headline).abs() <= 1e-9 * headline.abs(),
            "{total} vs {headline}"
        );
        // Counters conserve: per-routine cycles sum to the headline.
        let cyc: u64 = keys.iter().map(|(c, _)| c).sum();
        assert_eq!(cyc, report.cycles);
    }
}
