//! "Billie" — the non-configurable GF(2^m) accelerator of §5.5.
//!
//! Billie is a load-store coprocessor (Fig 5.12, modeled after the IBM
//! 360/91 floating-point unit): a sixteen-entry m-bit register file, a
//! four-entry instruction queue, and separate functional units for
//!
//! * **digit-serial multiplication** (Algorithm 8) — `ceil(m/D)` digit
//!   iterations with the reduction interleaved, plus a final reduction
//!   step; the digit width `D` (default 3, the energy-optimal value from
//!   Kumar et al. the paper adopts, §7.6) is a synthesis parameter and
//!   the x-axis of Fig 7.14;
//! * **hardwired squaring** (Fig 5.13) — a single cycle of XORs, because
//!   the field polynomial is fixed in the netlist;
//! * **full-field-width addition** — one cycle of XOR;
//! * a **load/store unit** bridging the m-bit register file to the 32-bit
//!   port on the shared dual-port RAM (`ceil(m/32)` cycles per element).
//!
//! The field (and hence the key size) is fixed when the unit is built —
//! that is precisely the reconfigurability/efficiency trade Fig 1.1
//! describes, and why the paper pairs Billie with the highest energy
//! efficiency and the least flexibility.
//!
//! Timing is event-based per functional unit with register-operand
//! scoreboarding; writeback-port arbitration (mul+sqr share one register
//! file port, add+LSU the other, §5.5.2) is modeled as a one-cycle
//! penalty when two completions collide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use ule_isa::instr::Instr;
use ule_mpmath::f2m::BinaryField;
use ule_mpmath::nist::NistBinary;
use ule_pete::cop::{CopStats, Coprocessor};
use ule_pete::mem::Ram;

/// Number of registers in Billie's register file (§5.5.2).
pub const NUM_REGS: usize = 16;

/// Depth of the instruction queue (§5.5.2).
pub const QUEUE_DEPTH: usize = 4;

/// Billie build-time parameters.
#[derive(Clone, Copy, Debug)]
pub struct BillieConfig {
    /// Digit width `D` of the serial multiplier (default 3, §7.6).
    pub digit: usize,
}

impl Default for BillieConfig {
    fn default() -> Self {
        BillieConfig { digit: 3 }
    }
}

/// The Billie accelerator model.
#[derive(Debug)]
pub struct Billie {
    field: BinaryField,
    config: BillieConfig,
    regs: Vec<Vec<u32>>,
    reg_ready: [u64; NUM_REGS],
    mul_free: u64,
    sqr_free: u64,
    add_free: u64,
    lsu_free: u64,
    /// Completion times of queued instructions (queue back-pressure).
    inflight: VecDeque<u64>,
    /// Port A (mul+sqr) last writeback cycle, for arbitration.
    port_a_busy: u64,
    /// Port B (add+LSU) last writeback cycle.
    port_b_busy: u64,
    stats: CopStats,
}

impl Billie {
    /// Builds a Billie for one of the NIST binary fields with the default
    /// digit width.
    pub fn new(field: NistBinary) -> Self {
        Self::with_config(field, BillieConfig::default())
    }

    /// Builds a Billie with an explicit digit width (Fig 7.14 sweep).
    pub fn with_config(field: NistBinary, config: BillieConfig) -> Self {
        assert!(config.digit >= 1 && config.digit <= 16);
        let f = BinaryField::nist(field);
        let k = f.k();
        Billie {
            field: f,
            config,
            regs: vec![vec![0; k]; NUM_REGS],
            reg_ready: [0; NUM_REGS],
            mul_free: 0,
            sqr_free: 0,
            add_free: 0,
            lsu_free: 0,
            inflight: VecDeque::new(),
            port_a_busy: 0,
            port_b_busy: 0,
            stats: CopStats::default(),
        }
    }

    /// The underlying field.
    pub fn field(&self) -> &BinaryField {
        &self.field
    }

    /// Multiplication latency in cycles: `ceil(m/D)` digit steps plus a
    /// final reduction and result handoff (Algorithm 8).
    pub fn mul_latency(&self) -> u64 {
        (self.field.m() as u64).div_ceil(self.config.digit as u64) + 2
    }

    /// Load/store latency: the 32-bit shared-RAM port moves one word per
    /// cycle (§5.5.2).
    pub fn lsu_latency(&self) -> u64 {
        self.field.k() as u64
    }

    /// Area proxy in "Pete units" for the energy model: the paper reports
    /// Billie at 1.45× Pete's area for 163 bits, scaling roughly linearly
    /// to 5× at 571 bits (§7.3).
    pub fn area_vs_pete(&self) -> f64 {
        // Linear fit through (163, 1.45) and (571, 5.0).
        1.45 + (self.field.m() as f64 - 163.0) * (5.0 - 1.45) / (571.0 - 163.0)
    }

    fn queue_admit(&mut self, cycle: u64) -> u64 {
        while let Some(&front) = self.inflight.front() {
            if front <= cycle {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        if self.inflight.len() < QUEUE_DEPTH {
            cycle + 1
        } else {
            let free = self.inflight.pop_front().expect("non-empty");
            free.max(cycle) + 1
        }
    }

    /// Arbitration: returns the writeback cycle, bumping by one if the
    /// port is already claimed at that cycle.
    fn claim_port(busy: &mut u64, want: u64) -> u64 {
        let granted = if want <= *busy { *busy + 1 } else { want };
        *busy = granted;
        granted
    }

    fn el(&self, r: u8) -> ule_mpmath::f2m::F2mElement {
        self.field.from_limbs(&self.regs[r as usize])
    }
}

impl Coprocessor for Billie {
    fn issue(&mut self, instr: Instr, rt_value: u32, cycle: u64, ram: &mut Ram) -> u64 {
        self.stats.instructions += 1;
        self.stats.ucode_reads += 1; // sequencer step
        let resume = self.queue_admit(cycle);
        let k = self.field.k();
        match instr {
            Instr::BilLd { fs, .. } => {
                let start = self.lsu_free.max(cycle);
                let done = start + self.lsu_latency();
                self.lsu_free = done;
                let wb = Self::claim_port(&mut self.port_b_busy, done);
                ram.count_external(k as u64, 0);
                self.stats.ram_reads += k as u64;
                self.stats.dma_cycles += self.lsu_latency();
                self.stats.ls_ops += 1;
                let words = ram.peek_words(rt_value, k);
                self.regs[fs as usize] = words;
                self.reg_ready[fs as usize] = wb;
                self.inflight.push_back(wb);
            }
            Instr::BilSt { fs, .. } => {
                let start = self.lsu_free.max(self.reg_ready[fs as usize]).max(cycle);
                let done = start + self.lsu_latency();
                self.lsu_free = done;
                ram.count_external(0, k as u64);
                self.stats.ram_writes += k as u64;
                self.stats.dma_cycles += self.lsu_latency();
                self.stats.ls_ops += 1;
                let words = self.regs[fs as usize].clone();
                ram.poke_words(rt_value, &words);
                self.inflight.push_back(done);
            }
            Instr::BilMul { fd, fs, ft } => {
                let start = self
                    .mul_free
                    .max(self.reg_ready[fs as usize])
                    .max(self.reg_ready[ft as usize])
                    .max(cycle);
                let done = start + self.mul_latency();
                self.mul_free = done;
                let wb = Self::claim_port(&mut self.port_a_busy, done);
                self.stats.busy_cycles += self.mul_latency();
                self.stats.mul_ops += 1;
                let r = self.field.mul(&self.el(fs), &self.el(ft));
                self.regs[fd as usize] = r.limbs().to_vec();
                self.reg_ready[fd as usize] = wb;
                self.inflight.push_back(wb);
            }
            Instr::BilSqr { fd, ft } => {
                let start = self.sqr_free.max(self.reg_ready[ft as usize]).max(cycle);
                let done = start + 1;
                self.sqr_free = done;
                let wb = Self::claim_port(&mut self.port_a_busy, done);
                self.stats.busy_cycles += 1;
                self.stats.mul_ops += 1;
                let r = self.field.sqr(&self.el(ft));
                self.regs[fd as usize] = r.limbs().to_vec();
                self.reg_ready[fd as usize] = wb;
                self.inflight.push_back(wb);
            }
            Instr::BilAdd { fd, fs, ft } => {
                let start = self
                    .add_free
                    .max(self.reg_ready[fs as usize])
                    .max(self.reg_ready[ft as usize])
                    .max(cycle);
                let done = start + 1;
                self.add_free = done;
                let wb = Self::claim_port(&mut self.port_b_busy, done);
                self.stats.busy_cycles += 1;
                let r = self.field.add(&self.el(fs), &self.el(ft));
                self.regs[fd as usize] = r.limbs().to_vec();
                self.reg_ready[fd as usize] = wb;
                self.inflight.push_back(wb);
            }
            Instr::Cop2Sync => unreachable!("sync handled by the CPU"),
            other => panic!("Billie cannot execute {other}"),
        }
        resume
    }

    fn idle_at(&self) -> u64 {
        self.mul_free
            .max(self.sqr_free)
            .max(self.add_free)
            .max(self.lsu_free)
            .max(self.port_a_busy)
            .max(self.port_b_busy)
    }

    fn stats(&self) -> CopStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "Billie"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_isa::asm::RAM_BASE;
    use ule_isa::reg::Reg;
    use ule_mpmath::mp::Mp;

    fn sample(f: &BinaryField, seed: u64) -> Vec<u32> {
        let mut x = seed | 1;
        let mut limbs = vec![0u32; f.k()];
        for l in limbs.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *l = x as u32;
        }
        limbs[f.k() - 1] &= (1u32 << (f.m() % 32)) - 1;
        limbs
    }

    #[test]
    fn load_compute_store_round_trip() {
        let mut b = Billie::new(NistBinary::B163);
        let f = b.field().clone();
        let mut ram = Ram::new();
        let a = sample(&f, 11);
        let c = sample(&f, 22);
        ram.poke_words(RAM_BASE, &a);
        ram.poke_words(RAM_BASE + 64, &c);
        let rt = Reg::T0;
        let mut cy = 0;
        cy = b.issue(Instr::BilLd { rt, fs: 1 }, RAM_BASE, cy, &mut ram);
        cy = b.issue(Instr::BilLd { rt, fs: 2 }, RAM_BASE + 64, cy, &mut ram);
        cy = b.issue(
            Instr::BilMul {
                fd: 3,
                fs: 1,
                ft: 2,
            },
            0,
            cy,
            &mut ram,
        );
        cy = b.issue(Instr::BilSqr { fd: 4, ft: 3 }, 0, cy, &mut ram);
        cy = b.issue(
            Instr::BilAdd {
                fd: 5,
                fs: 4,
                ft: 1,
            },
            0,
            cy,
            &mut ram,
        );
        let _ = b.issue(Instr::BilSt { rt, fs: 5 }, RAM_BASE + 128, cy, &mut ram);
        let got = ram.peek_words(RAM_BASE + 128, f.k());
        let ea = f.from_limbs(&a);
        let ec = f.from_limbs(&c);
        let expect = f.add(&f.sqr(&f.mul(&ea, &ec)), &ea);
        assert_eq!(got, expect.limbs());
    }

    #[test]
    fn mul_latency_follows_digit_width() {
        for (d, expect) in [(1usize, 163 + 2), (3, 55 + 2), (4, 41 + 2), (8, 21 + 2)] {
            let b = Billie::with_config(NistBinary::B163, BillieConfig { digit: d });
            assert_eq!(b.mul_latency(), expect as u64, "D={d}");
        }
    }

    #[test]
    fn dependent_ops_serialize_independent_overlap() {
        let mut b = Billie::new(NistBinary::B163);
        let mut ram = Ram::new();
        let f = b.field().clone();
        ram.poke_words(RAM_BASE, &sample(&f, 5));
        let rt = Reg::T0;
        let mut cy = 10;
        cy = b.issue(Instr::BilLd { rt, fs: 1 }, RAM_BASE, cy, &mut ram);
        // A dependent multiply must wait for the load's writeback.
        cy = b.issue(
            Instr::BilMul {
                fd: 2,
                fs: 1,
                ft: 1,
            },
            0,
            cy,
            &mut ram,
        );
        let after_mul = b.mul_free;
        assert!(after_mul >= 10 + b.lsu_latency() + b.mul_latency());
        // An independent add issued now completes long before the multiply.
        let _ = b.issue(
            Instr::BilAdd {
                fd: 5,
                fs: 6,
                ft: 7,
            },
            0,
            cy,
            &mut ram,
        );
        assert!(b.add_free < after_mul);
    }

    #[test]
    fn queue_backpressure() {
        let mut b = Billie::new(NistBinary::B571);
        let mut ram = Ram::new();
        let mut cy = 0;
        let mut stalled = false;
        for _ in 0..10 {
            let next = b.issue(
                Instr::BilMul {
                    fd: 1,
                    fs: 1,
                    ft: 1,
                },
                0,
                cy,
                &mut ram,
            );
            if next > cy + 1 {
                stalled = true;
            }
            cy = next;
        }
        assert!(stalled, "dependent multiply chain must back-pressure");
    }

    #[test]
    fn area_proxy_matches_paper_endpoints() {
        let b163 = Billie::new(NistBinary::B163);
        let b571 = Billie::new(NistBinary::B571);
        assert!((b163.area_vs_pete() - 1.45).abs() < 1e-9);
        assert!((b571.area_vs_pete() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fermat_inversion_through_registers() {
        // Drive the model the way the suite will: square-and-multiply
        // 2^m - 2 and check the functional result against the host.
        let mut b = Billie::new(NistBinary::B163);
        let f = b.field().clone();
        let mut ram = Ram::new();
        let a = sample(&f, 99);
        ram.poke_words(RAM_BASE, &a);
        let rt = Reg::T0;
        let mut cy = 0;
        cy = b.issue(Instr::BilLd { rt, fs: 1 }, RAM_BASE, cy, &mut ram);
        // r (reg2) = a
        cy = b.issue(
            Instr::BilAdd {
                fd: 2,
                fs: 1,
                ft: 15,
            },
            0,
            cy,
            &mut ram,
        ); // reg15 = 0
        for _ in 0..f.m() - 2 {
            cy = b.issue(Instr::BilSqr { fd: 2, ft: 2 }, 0, cy, &mut ram);
            cy = b.issue(
                Instr::BilMul {
                    fd: 2,
                    fs: 2,
                    ft: 1,
                },
                0,
                cy,
                &mut ram,
            );
        }
        cy = b.issue(Instr::BilSqr { fd: 2, ft: 2 }, 0, cy, &mut ram);
        let _ = b.issue(Instr::BilSt { rt, fs: 2 }, RAM_BASE + 256, cy, &mut ram);
        let got = ram.peek_words(RAM_BASE + 256, f.k());
        let expect = f.inv(&f.from_limbs(&a)).unwrap();
        assert_eq!(got, expect.limbs());
        let _ = Mp::zero();
    }
}
