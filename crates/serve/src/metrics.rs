//! Service-layer metrics: host op-cost weighting, the batch-size →
//! energy scaling model, `serve_point` / `serve_summary` /
//! `serve_frontier` records, the virtual-time `serve_latency` /
//! `sla_summary` records (schema v5), the batch-size Pareto axis, and
//! the journal validators behind `repro check --serve` and
//! `repro check --sla`.
//!
//! The energy model is a *scaling* model, not a second simulator: the
//! cycle/energy/area of one verification come from the `ule-core`
//! simulator (via [`SimCosts`]), and batching multiplies them by the
//! ratio of weighted host group operations per request between the
//! batched run and the batch-size-1 reference over identical traffic.
//! The weights (double 8, add 11, inversion 80) are the repository's
//! stock host op-cost model from the `ule-curves` scalar benchmarks.

use ule_curves::scalar::OpCount;
use ule_dse::pareto::{Objectives, ParetoFront};
use ule_obs::hist::LatencyHist;
use ule_obs::json::{self, Json, JsonBuf};
use ule_obs::record::Record;
use ule_obs::Value;

use crate::ServeOutcome;

/// Relative host cost of one point doubling.
pub const HOST_WEIGHT_DOUBLE: u64 = 8;
/// Relative host cost of one point addition.
pub const HOST_WEIGHT_ADD: u64 = 11;
/// Relative host cost of one field inversion.
pub const HOST_WEIGHT_INVERSION: u64 = 80;

/// Weighted host group-operation count — the scalar the energy model
/// scales by.
pub fn weighted_ops(ops: &OpCount) -> u64 {
    ops.doubles as u64 * HOST_WEIGHT_DOUBLE
        + ops.adds as u64 * HOST_WEIGHT_ADD
        + ops.inversions as u64 * HOST_WEIGHT_INVERSION
}

/// Per-request op-cost ratio of a batched run against the
/// batch-size-1 reference over the same traffic (< 1 when batching
/// helps). Both outcomes must cover the same request count.
pub fn op_scale(outcome: &ServeOutcome, reference: &ServeOutcome) -> f64 {
    assert_eq!(
        outcome.config.requests, reference.config.requests,
        "op_scale compares runs over identical traffic"
    );
    let ref_ops = weighted_ops(&reference.ops);
    if ref_ops == 0 {
        return 1.0;
    }
    weighted_ops(&outcome.ops) as f64 / ref_ops as f64
}

/// One simulated design point's verification cost, as produced by the
/// `ule-core` simulator for `Workload::Verify`.
#[derive(Clone, Debug)]
pub struct SimCosts {
    /// Architecture label (`baseline`, `isa_ext`, `monte`, `billie`).
    pub arch: String,
    /// Simulated cycles for one verification.
    pub cycles: u64,
    /// Simulated energy for one verification, µJ.
    pub energy_uj: f64,
    /// Silicon-area proxy, kGE.
    pub area_kge: f64,
}

/// Energy per million requests (µJ) at the given op scale.
pub fn energy_uj_per_million_requests(costs: &SimCosts, scale: f64) -> f64 {
    costs.energy_uj * scale * 1e6
}

/// The `serve_point` record: one (curve, arch, batch size) service run.
pub fn serve_point_record(outcome: &ServeOutcome, scale: f64, costs: &SimCosts) -> Record {
    let cfg = &outcome.config;
    let mut r = Record::new("serve_point");
    r.push("curve", cfg.curve.name())
        .push("arch", costs.arch.as_str())
        .push("batch_size", cfg.batch_size as u64)
        .push("shards", cfg.shards as u64)
        .push("requests", cfg.requests as u64)
        .push("seed", cfg.seed)
        .push("accepted", outcome.accepted as u64)
        .push("rejected", outcome.rejected as u64)
        .push("mismatches", outcome.mismatches as u64)
        .push("batches", outcome.batches as u64)
        .push("rlc_batches", outcome.rlc_batches as u64)
        .push("fallback_batches", outcome.fallback_batches as u64)
        .push("host_doubles", outcome.ops.doubles as u64)
        .push("host_adds", outcome.ops.adds as u64)
        .push("host_inversions", outcome.ops.inversions as u64)
        .push("host_weighted_ops", weighted_ops(&outcome.ops))
        .push("op_scale", scale)
        .push(
            "cycles_per_verify",
            (costs.cycles as f64 * scale).round() as u64,
        )
        .push("energy_uj_per_verify", costs.energy_uj * scale)
        .push(
            "energy_uj_per_million_requests",
            energy_uj_per_million_requests(costs, scale),
        )
        // The two wall-clock fields — the only nondeterministic ones.
        .push("signatures_per_sec", outcome.signatures_per_sec())
        .push("wall_ms", outcome.wall.as_secs_f64() * 1e3);
    r
}

/// The `serve_summary` record: gains of the largest batch size over the
/// batch-size-1 reference, across one batch-size sweep.
pub fn serve_summary_record(runs: &[(ServeOutcome, f64)]) -> Record {
    let reference = runs
        .iter()
        .map(|(o, _)| o)
        .find(|o| o.config.batch_size == 1)
        .expect("summary needs the batch-size-1 reference run");
    let largest = runs
        .iter()
        .map(|(o, _)| o)
        .max_by_key(|o| o.config.batch_size)
        .expect("summary needs at least one run");
    let best = runs
        .iter()
        .map(|(o, _)| o)
        .min_by_key(|o| weighted_ops(&o.ops))
        .expect("summary needs at least one run");
    let gain_ops = weighted_ops(&reference.ops) as f64 / weighted_ops(&largest.ops).max(1) as f64;
    let ref_sps = reference.signatures_per_sec();
    let gain_sps = if ref_sps > 0.0 {
        largest.signatures_per_sec() / ref_sps
    } else {
        0.0
    };
    let cfg = &reference.config;
    let sizes: Vec<String> = runs
        .iter()
        .map(|(o, _)| o.config.batch_size.to_string())
        .collect();
    let mut r = Record::new("serve_summary");
    r.push("curve", cfg.curve.name())
        .push("seed", cfg.seed)
        .push("shards", cfg.shards as u64)
        .push("requests", cfg.requests as u64)
        .push(
            "batch_sizes",
            ule_obs::Value::Raw(format!("[{}]", sizes.join(","))),
        )
        .push("best_batch_size", best.config.batch_size as u64)
        .push("gain_batch", largest.config.batch_size as u64)
        .push("gain_ops", gain_ops)
        .push("gain_sps", gain_sps)
        .push(
            "mismatches",
            runs.iter().map(|(o, _)| o.mismatches as u64).sum::<u64>(),
        );
    r
}

/// Builds the (arch × batch size) Pareto frontier — the batch-size DSE
/// axis — and one `serve_frontier` record per frontier point.
///
/// Point ids are `arch_index * runs.len() + run_index`, matching the
/// order of `costs` and `runs`.
pub fn frontier_records(
    costs: &[SimCosts],
    runs: &[(ServeOutcome, f64)],
) -> (ParetoFront, Vec<Record>) {
    let mut front = ParetoFront::new();
    for (ai, c) in costs.iter().enumerate() {
        for (ri, (_, scale)) in runs.iter().enumerate() {
            front.insert(
                ai * runs.len() + ri,
                Objectives {
                    cycles: (c.cycles as f64 * scale).round() as u64,
                    energy_uj: c.energy_uj * scale,
                    area_kge: c.area_kge,
                },
            );
        }
    }
    let records = front
        .points()
        .iter()
        .map(|p| {
            let (ai, ri) = (p.id / runs.len(), p.id % runs.len());
            let mut r = Record::new("serve_frontier");
            r.push("curve", runs[ri].0.config.curve.name())
                .push("arch", costs[ai].arch.as_str())
                .push("batch_size", runs[ri].0.config.batch_size as u64)
                .push("cycles", p.objectives.cycles)
                .push("energy_uj", p.objectives.energy_uj)
                .push("area_kge", p.objectives.area_kge);
            r
        })
        .collect();
    (front, records)
}

/// Pushes one histogram's fields into a record under the fixed
/// `serve_latency` layout (count, extrema, mean, exact-count
/// percentiles, bucket scheme, sparse buckets).
fn push_hist_fields(r: &mut Record, hist: &LatencyHist) {
    r.push("count", hist.count())
        .push("min_cycles", hist.min().unwrap_or(0))
        .push("max_cycles", hist.max().unwrap_or(0))
        .push("sum_cycles", u64::try_from(hist.sum()).unwrap_or(u64::MAX))
        .push("mean_cycles", hist.mean())
        .push("p50_cycles", hist.percentile(50.0))
        .push("p95_cycles", hist.percentile(95.0))
        .push("p99_cycles", hist.percentile(99.0))
        .push("p999_cycles", hist.percentile(99.9))
        .push("hist_sub_bits", u64::from(ule_obs::hist::SUB_BITS))
        .push("hist_buckets", Value::Raw(hist.buckets_json()));
}

fn push_config_fields(r: &mut Record, outcome: &ServeOutcome) {
    let cfg = &outcome.config;
    r.push("curve", cfg.curve.name())
        .push("batch_size", cfg.batch_size as u64)
        .push("shards", cfg.shards as u64)
        .push("requests", cfg.requests as u64)
        .push("seed", cfg.seed)
        .push("arrival_rate", cfg.arrival_rate)
        .push("cycles_per_verify", cfg.cycles_per_verify);
}

/// The `serve_latency` records of one run: the fleet histogram first
/// (`scope:"fleet"`, `shard:-1`), then one record per shard. Every
/// field is a pure function of the config — no wall clock anywhere —
/// so the lines are byte-identical across reruns, and `repro check
/// --sla` re-merges the shard histograms to pin them against the
/// fleet one.
pub fn serve_latency_records(outcome: &ServeOutcome) -> Vec<Record> {
    let mut records = Vec::with_capacity(1 + outcome.telemetry.shard_hists.len());
    let mut fleet = Record::new("serve_latency");
    push_config_fields(&mut fleet, outcome);
    fleet.push("scope", "fleet").push("shard", -1i64);
    push_hist_fields(&mut fleet, &outcome.telemetry.fleet_hist);
    records.push(fleet);
    for (shard, hist) in outcome.telemetry.shard_hists.iter().enumerate() {
        let mut r = Record::new("serve_latency");
        push_config_fields(&mut r, outcome);
        r.push("scope", "shard").push("shard", shard as i64);
        push_hist_fields(&mut r, hist);
        records.push(r);
    }
    records
}

/// The `sla_summary` record: the fleet-level service-level figures of
/// one run — exact-count latency percentiles, queue-depth telemetry,
/// per-shard utilization, and the p99-latency × energy product that
/// ranks design points for ROADMAP item 5.
pub fn sla_summary_record(outcome: &ServeOutcome, scale: f64, costs: &SimCosts) -> Record {
    let t = &outcome.telemetry;
    let p99 = t.fleet_hist.percentile(99.0);
    let energy_per_million = energy_uj_per_million_requests(costs, scale);
    let mut util = JsonBuf::new();
    util.begin_array();
    for u in &t.utilization {
        util.value_f64(*u);
    }
    util.end_array();
    let mut r = Record::new("sla_summary");
    push_config_fields(&mut r, outcome);
    r.push("arch", costs.arch.as_str())
        .push("accepted", outcome.accepted as u64)
        .push("rejected", outcome.rejected as u64)
        .push("mean_latency_cycles", t.fleet_hist.mean())
        .push("p50_latency_cycles", t.fleet_hist.percentile(50.0))
        .push("p95_latency_cycles", t.fleet_hist.percentile(95.0))
        .push("p99_latency_cycles", p99)
        .push("p999_latency_cycles", t.fleet_hist.percentile(99.9))
        .push("queue_depth_max", t.queue_depth_max)
        .push("queue_depth_mean", t.queue_depth_mean)
        .push("horizon_cycles", t.horizon_cycles)
        .push("shard_utilization", Value::Raw(util.finish()))
        .push("op_scale", scale)
        .push("energy_uj_per_million_requests", energy_per_million)
        // The SLA figure of merit: cycles-to-p99 × energy-per-Mreq.
        // Smaller is better on both axes, so smaller products dominate.
        .push("p99_energy_product", p99 as f64 * energy_per_million);
    r
}

/// What `validate_serve` found in a journal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeCheck {
    /// `serve_point` records seen.
    pub points: usize,
    /// `serve_summary` records seen.
    pub summaries: usize,
    /// `serve_frontier` records seen.
    pub frontier: usize,
    /// Total mismatches across all points (must be 0).
    pub mismatches: u64,
    /// Smallest `gain_ops` across summaries (∞ if none).
    pub min_gain_ops: f64,
}

fn require_u64(doc: &Json, ctx: &str, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing/non-integer key {key:?}"))
}

fn require_f64(doc: &Json, ctx: &str, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing/non-numeric key {key:?}"))
}

/// Validates a serve journal (JSONL text): well-formed records of the
/// v4 schema, zero verdict mismatches, and — when `min_gain_ops` is
/// given — every summary's deterministic batching gain at or above it.
pub fn validate_serve(text: &str, min_gain_ops: Option<f64>) -> Result<ServeCheck, String> {
    let mut check = ServeCheck {
        min_gain_ops: f64::INFINITY,
        ..ServeCheck::default()
    };
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).ok_or_else(|| format!("line {n}: not valid JSON"))?;
        let kind = doc.get("record").and_then(Json::as_str).unwrap_or("");
        let ctx = format!("line {n} ({kind})");
        match kind {
            "serve_point" => {
                for key in [
                    "batch_size",
                    "shards",
                    "requests",
                    "accepted",
                    "rejected",
                    "batches",
                    "rlc_batches",
                    "fallback_batches",
                    "host_weighted_ops",
                ] {
                    require_u64(&doc, &ctx, key)?;
                }
                for key in [
                    "op_scale",
                    "signatures_per_sec",
                    "energy_uj_per_million_requests",
                ] {
                    require_f64(&doc, &ctx, key)?;
                }
                let m = require_u64(&doc, &ctx, "mismatches")?;
                if m != 0 {
                    return Err(format!(
                        "{ctx}: {m} verdict mismatches — batch verifier diverged from verify_prehashed"
                    ));
                }
                let accepted = require_u64(&doc, &ctx, "accepted")?;
                let rejected = require_u64(&doc, &ctx, "rejected")?;
                if accepted + rejected != require_u64(&doc, &ctx, "requests")? {
                    return Err(format!("{ctx}: accepted + rejected != requests"));
                }
                check.points += 1;
            }
            "serve_summary" => {
                let gain = require_f64(&doc, &ctx, "gain_ops")?;
                if require_u64(&doc, &ctx, "mismatches")? != 0 {
                    return Err(format!("{ctx}: nonzero mismatches"));
                }
                if let Some(floor) = min_gain_ops {
                    if gain < floor {
                        return Err(format!(
                            "{ctx}: batching gain {gain:.3}x below the {floor:.2}x floor"
                        ));
                    }
                }
                check.min_gain_ops = check.min_gain_ops.min(gain);
                check.summaries += 1;
            }
            "serve_frontier" => {
                require_u64(&doc, &ctx, "batch_size")?;
                require_f64(&doc, &ctx, "energy_uj")?;
                require_f64(&doc, &ctx, "area_kge")?;
                check.frontier += 1;
            }
            _ => {} // foreign record kinds are fine in a shared journal
        }
    }
    if check.points == 0 {
        return Err("no serve_point records found".into());
    }
    if check.summaries == 0 {
        return Err("no serve_summary record found".into());
    }
    Ok(check)
}

/// What `validate_sla` found in a journal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlaCheck {
    /// `serve_latency` records seen.
    pub latency_records: usize,
    /// `sla_summary` records seen.
    pub summaries: usize,
    /// Runs (fleet histogram + its shard histograms) cross-checked.
    pub runs: usize,
    /// Largest fleet p99 across summaries.
    pub max_p99: u64,
}

/// One parsed `serve_latency` line held for cross-checking.
struct LatencyLine {
    line: usize,
    shard: i64,
    shards: u64,
    count: u64,
    hist: LatencyHist,
    percentiles: [(f64, u64); 4],
    min: u64,
    max: u64,
}

fn parse_sparse_hist(doc: &Json, ctx: &str) -> Result<LatencyHist, String> {
    let pairs = doc
        .get("hist_buckets")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing hist_buckets array"))?;
    let mut sparse = Vec::with_capacity(pairs.len());
    for (i, pair) in pairs.iter().enumerate() {
        let p = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{ctx}: bucket {i} is not an [index,count] pair"))?;
        let idx = p[0]
            .as_u64()
            .ok_or_else(|| format!("{ctx}: bucket {i} index not an integer"))?;
        let count = p[1]
            .as_u64()
            .ok_or_else(|| format!("{ctx}: bucket {i} count not an integer"))?;
        sparse.push((idx, count));
    }
    LatencyHist::from_sparse(&sparse).ok_or_else(|| format!("{ctx}: bucket index out of range"))
}

/// Validates an SLA journal (JSONL text): well-formed `serve_latency`
/// and `sla_summary` records, exact-count percentiles that recompute
/// from the serialized buckets, monotone percentile ladders, shard
/// histograms that merge into the fleet histogram bucket-for-bucket,
/// fleet totals equal to `accepted + rejected`, and — when `max_p99`
/// is given — every summary's fleet p99 at or below it.
pub fn validate_sla(text: &str, max_p99: Option<u64>) -> Result<SlaCheck, String> {
    let mut check = SlaCheck::default();
    // One run = one (curve, batch_size, shards, requests, seed,
    // arrival_rate) combination; keyed on the serialized fields.
    let mut runs: std::collections::BTreeMap<String, Vec<LatencyLine>> =
        std::collections::BTreeMap::new();
    let mut summaries: Vec<(String, usize, u64, u64, u64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).ok_or_else(|| format!("line {n}: not valid JSON"))?;
        let kind = doc.get("record").and_then(Json::as_str).unwrap_or("");
        let ctx = format!("line {n} ({kind})");
        let run_key = |doc: &Json| -> Result<String, String> {
            let mut key = String::new();
            for field in ["curve", "batch_size", "shards", "requests", "seed"] {
                let v = doc
                    .get(field)
                    .ok_or_else(|| format!("{ctx}: missing key {field:?}"))?;
                key.push_str(&format!(
                    "{}|",
                    v.as_str()
                        .map(str::to_owned)
                        .or_else(|| v.as_f64().map(|f| f.to_string()))
                        .ok_or_else(|| format!("{ctx}: unreadable key {field:?}"))?
                ));
            }
            Ok(key)
        };
        match kind {
            "serve_latency" => {
                let scope = doc
                    .get("scope")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{ctx}: missing scope"))?;
                let shard = match scope {
                    "fleet" => -1i64,
                    "shard" => doc
                        .get("shard")
                        .and_then(Json::as_f64)
                        .filter(|s| *s >= 0.0)
                        .ok_or_else(|| format!("{ctx}: shard scope without shard index"))?
                        as i64,
                    other => return Err(format!("{ctx}: unknown scope {other:?}")),
                };
                let hist = parse_sparse_hist(&doc, &ctx)?;
                let entry = LatencyLine {
                    line: n,
                    shard,
                    shards: require_u64(&doc, &ctx, "shards")?,
                    count: require_u64(&doc, &ctx, "count")?,
                    hist,
                    percentiles: [
                        (50.0, require_u64(&doc, &ctx, "p50_cycles")?),
                        (95.0, require_u64(&doc, &ctx, "p95_cycles")?),
                        (99.0, require_u64(&doc, &ctx, "p99_cycles")?),
                        (99.9, require_u64(&doc, &ctx, "p999_cycles")?),
                    ],
                    min: require_u64(&doc, &ctx, "min_cycles")?,
                    max: require_u64(&doc, &ctx, "max_cycles")?,
                };
                if entry.hist.count() != entry.count {
                    return Err(format!(
                        "{ctx}: serialized buckets sum to {} but count says {}",
                        entry.hist.count(),
                        entry.count
                    ));
                }
                if entry.min > entry.max {
                    return Err(format!("{ctx}: min above max"));
                }
                // Percentiles are bucket lower bounds, so the ladder
                // starts at 0 (p50 may sit below the exact min when
                // both land in one bucket) but must end under max.
                let mut prev = 0u64;
                for (p, v) in entry.percentiles {
                    if v < prev {
                        return Err(format!("{ctx}: percentile ladder not monotone at p{p}"));
                    }
                    let recomputed = entry.hist.percentile(p);
                    if recomputed != v {
                        return Err(format!(
                            "{ctx}: p{p} = {v} but the buckets say {recomputed}"
                        ));
                    }
                    prev = v;
                }
                if entry.max < prev {
                    return Err(format!("{ctx}: max below p999"));
                }
                runs.entry(run_key(&doc)?).or_default().push(entry);
                check.latency_records += 1;
            }
            "sla_summary" => {
                let accepted = require_u64(&doc, &ctx, "accepted")?;
                let rejected = require_u64(&doc, &ctx, "rejected")?;
                let p99 = require_u64(&doc, &ctx, "p99_latency_cycles")?;
                let depth_max = require_u64(&doc, &ctx, "queue_depth_max")?;
                let depth_mean = require_f64(&doc, &ctx, "queue_depth_mean")?;
                if depth_mean > depth_max as f64 {
                    return Err(format!("{ctx}: mean queue depth exceeds the max"));
                }
                let shards = require_u64(&doc, &ctx, "shards")?;
                let util = doc
                    .get("shard_utilization")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("{ctx}: missing shard_utilization array"))?;
                if util.len() as u64 != shards {
                    return Err(format!(
                        "{ctx}: {} utilization entries for {shards} shards",
                        util.len()
                    ));
                }
                for (s, u) in util.iter().enumerate() {
                    let u = u
                        .as_f64()
                        .ok_or_else(|| format!("{ctx}: non-numeric utilization"))?;
                    if !(0.0..=1.0).contains(&u) {
                        return Err(format!("{ctx}: shard {s} utilization {u} outside [0,1]"));
                    }
                }
                if let Some(ceiling) = max_p99 {
                    if p99 > ceiling {
                        return Err(format!(
                            "{ctx}: fleet p99 {p99} cycles above the {ceiling}-cycle ceiling"
                        ));
                    }
                }
                check.max_p99 = check.max_p99.max(p99);
                summaries.push((run_key(&doc)?, n, accepted, rejected, p99));
                check.summaries += 1;
            }
            _ => {} // foreign record kinds are fine in a shared journal
        }
    }

    // Cross-checks within each run: the fleet histogram must be the
    // exact bucket-wise merge of the shard histograms.
    for (key, lines) in &runs {
        let fleet: Vec<&LatencyLine> = lines.iter().filter(|l| l.shard < 0).collect();
        let [fleet] = fleet[..] else {
            return Err(format!(
                "run {key:?}: expected exactly one fleet serve_latency record, found {}",
                fleet.len()
            ));
        };
        let shard_lines: Vec<&LatencyLine> = lines.iter().filter(|l| l.shard >= 0).collect();
        if shard_lines.len() as u64 != fleet.shards {
            return Err(format!(
                "run {key:?}: {} shard histograms for {} shards",
                shard_lines.len(),
                fleet.shards
            ));
        }
        let mut merged = LatencyHist::new();
        for l in &shard_lines {
            merged.merge(&l.hist);
        }
        if merged != fleet.hist {
            return Err(format!(
                "run {key:?}: shard histograms do not merge into the fleet histogram \
                 (line {})",
                fleet.line
            ));
        }
        if merged.count() != fleet.count {
            return Err(format!(
                "run {key:?}: shard counts do not sum to the fleet count"
            ));
        }
        check.runs += 1;
    }
    for (key, n, accepted, rejected, p99) in &summaries {
        let Some(lines) = runs.get(key) else {
            return Err(format!(
                "line {n} (sla_summary): no serve_latency records for this run"
            ));
        };
        let fleet = lines.iter().find(|l| l.shard < 0).expect("checked above");
        if accepted + rejected != fleet.count {
            return Err(format!(
                "line {n} (sla_summary): accepted + rejected = {} but the fleet \
                 histogram holds {} samples",
                accepted + rejected,
                fleet.count
            ));
        }
        if *p99 != fleet.hist.percentile(99.0) {
            return Err(format!(
                "line {n} (sla_summary): p99 disagrees with the fleet histogram"
            ));
        }
    }
    if check.runs == 0 {
        return Err("no serve_latency records found".into());
    }
    if check.summaries == 0 {
        return Err("no sla_summary record found".into());
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_service, ServeConfig};
    use ule_curves::params::CurveId;

    fn costs() -> Vec<SimCosts> {
        vec![
            SimCosts {
                arch: "baseline".into(),
                cycles: 1_000_000,
                energy_uj: 50.0,
                area_kge: 10.0,
            },
            SimCosts {
                arch: "isa_ext".into(),
                cycles: 400_000,
                energy_uj: 30.0,
                area_kge: 14.0,
            },
        ]
    }

    fn sweep(curve: CurveId) -> Vec<(crate::ServeOutcome, f64)> {
        let mut runs = Vec::new();
        let reference = run_service(&ServeConfig {
            requests: 32,
            batch_size: 1,
            shards: 2,
            seed: 9,
            ..ServeConfig::new(curve)
        });
        for batch in [1usize, 4, 16] {
            let outcome = if batch == 1 {
                reference.clone()
            } else {
                run_service(&ServeConfig {
                    batch_size: batch,
                    ..reference.config
                })
            };
            let scale = op_scale(&outcome, &reference);
            runs.push((outcome, scale));
        }
        runs
    }

    #[test]
    fn records_validate_and_scale_monotonically() {
        let runs = sweep(CurveId::P192);
        assert_eq!(runs[0].1, 1.0);
        // Shared-table amortization alone guarantees strict savings at
        // any batch size > 1; which of 4/16 wins depends on where the
        // dirty items land, so only compare each against the reference.
        assert!(runs[1].1 < 1.0, "batch 4 must scale below 1: {}", runs[1].1);
        assert!(
            runs[2].1 < 0.9,
            "batch 16 must cut ops by >10%: {}",
            runs[2].1
        );
        let costs = costs();
        let mut text = String::new();
        for (outcome, scale) in &runs {
            text.push_str(&serve_point_record(outcome, *scale, &costs[0]).to_json());
            text.push('\n');
        }
        text.push_str(&serve_summary_record(&runs).to_json());
        text.push('\n');
        let (front, frontier) = frontier_records(&costs, &runs);
        assert!(!front.is_empty());
        for r in &frontier {
            text.push_str(&r.to_json());
            text.push('\n');
        }
        let check = validate_serve(&text, Some(1.05)).expect("journal validates");
        assert_eq!(check.points, 3);
        assert_eq!(check.summaries, 1);
        assert!(check.frontier >= 1);
        assert_eq!(check.mismatches, 0);
        assert!(check.min_gain_ops > 1.05);
    }

    #[test]
    fn frontier_prefers_batched_points_within_an_arch() {
        let runs = sweep(CurveId::P192);
        let (front, _) = frontier_records(&costs(), &runs);
        // Within one arch, area is constant and cycles/energy share
        // one scale factor, so only the cheapest batch size survives —
        // never the unbatched reference (ids 0 and runs.len()).
        assert!(!front.contains(0));
        assert!(!front.contains(runs.len()));
        for p in front.points() {
            assert_ne!(p.id % runs.len(), 0, "batch 1 cannot be on the frontier");
        }
    }

    #[test]
    fn validator_rejects_mismatches_and_weak_gains() {
        let runs = sweep(CurveId::P192);
        let good = format!(
            "{}\n{}\n",
            serve_point_record(&runs[0].0, runs[0].1, &costs()[0]).to_json(),
            serve_summary_record(&runs).to_json()
        );
        assert!(validate_serve(&good, None).is_ok());
        assert!(validate_serve(&good, Some(1e9)).is_err());
        let tampered = good.replace("\"mismatches\":0", "\"mismatches\":3");
        assert!(validate_serve(&tampered, None).is_err());
        assert!(validate_serve("", None).is_err());
        assert!(validate_serve("{\"record\":\"serve_point\"}\n", None).is_err());
    }

    fn sla_journal(outcome: &crate::ServeOutcome) -> String {
        let mut text = String::new();
        for r in serve_latency_records(outcome) {
            text.push_str(&r.to_json());
            text.push('\n');
        }
        text.push_str(&sla_summary_record(outcome, 1.0, &costs()[0]).to_json());
        text.push('\n');
        text
    }

    #[test]
    fn sla_journal_validates_and_recomputes_from_buckets() {
        let outcome = run_service(&ServeConfig {
            requests: 48,
            batch_size: 8,
            shards: 3,
            seed: 9,
            ..ServeConfig::new(CurveId::P192)
        });
        let text = sla_journal(&outcome);
        let check = validate_sla(&text, None).expect("sla journal validates");
        assert_eq!(check.runs, 1);
        assert_eq!(check.latency_records, 1 + 3); // fleet + one per shard
        assert_eq!(check.summaries, 1);
        assert_eq!(check.max_p99, outcome.telemetry.fleet_hist.percentile(99.0));
        // The ceiling gate works in both directions.
        assert!(validate_sla(&text, Some(check.max_p99)).is_ok());
        assert!(validate_sla(&text, Some(check.max_p99 - 1)).is_err());
        // Rerun determinism: the serialized journal is byte-identical.
        let outcome2 = run_service(&outcome.config);
        assert_eq!(text, sla_journal(&outcome2));
    }

    #[test]
    fn sla_validator_rejects_tampered_journals() {
        let outcome = run_service(&ServeConfig {
            requests: 32,
            batch_size: 4,
            shards: 2,
            seed: 5,
            ..ServeConfig::new(CurveId::K163)
        });
        let good = sla_journal(&outcome);
        assert!(validate_sla(&good, None).is_ok());

        // A dropped shard histogram breaks the merge identity.
        let missing_shard: String = good
            .lines()
            .filter(|l| !l.contains("\"scope\":\"shard\",\"shard\":1"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate_sla(&missing_shard, None).is_err());

        // An inflated count disagrees with the serialized buckets.
        let count = format!("\"count\":{}", outcome.telemetry.fleet_hist.count());
        let wrong = format!("\"count\":{}", outcome.telemetry.fleet_hist.count() + 1);
        let tampered = good.replacen(&count, &wrong, 1);
        assert!(validate_sla(&tampered, None).is_err());

        // A journal with latency records but no summary is incomplete.
        let no_summary: String = good
            .lines()
            .filter(|l| !l.contains("\"record\":\"sla_summary\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate_sla(&no_summary, None).is_err());
        assert!(validate_sla("", None).is_err());
    }

    #[test]
    fn sla_summary_prices_latency_against_energy() {
        let outcome = run_service(&ServeConfig {
            requests: 32,
            batch_size: 8,
            shards: 2,
            seed: 7,
            ..ServeConfig::new(CurveId::P192)
        });
        let r = sla_summary_record(&outcome, 0.5, &costs()[0]).to_json();
        let doc = json::parse(&r).expect("record parses");
        let p99 = doc
            .get("p99_latency_cycles")
            .and_then(Json::as_u64)
            .unwrap();
        let energy = doc
            .get("energy_uj_per_million_requests")
            .and_then(Json::as_f64)
            .unwrap();
        let product = doc
            .get("p99_energy_product")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(p99, outcome.telemetry.fleet_hist.percentile(99.0));
        assert!((product - p99 as f64 * energy).abs() < 1e-6 * product.abs().max(1.0));
        let util = doc
            .get("shard_utilization")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(util.len(), 2);
    }
}
