//! Service-layer metrics: host op-cost weighting, the batch-size →
//! energy scaling model, `serve_point` / `serve_summary` /
//! `serve_frontier` records (schema v4), the batch-size Pareto axis,
//! and the journal validator behind `repro check --serve`.
//!
//! The energy model is a *scaling* model, not a second simulator: the
//! cycle/energy/area of one verification come from the `ule-core`
//! simulator (via [`SimCosts`]), and batching multiplies them by the
//! ratio of weighted host group operations per request between the
//! batched run and the batch-size-1 reference over identical traffic.
//! The weights (double 8, add 11, inversion 80) are the repository's
//! stock host op-cost model from the `ule-curves` scalar benchmarks.

use ule_curves::scalar::OpCount;
use ule_dse::pareto::{Objectives, ParetoFront};
use ule_obs::json::{self, Json};
use ule_obs::record::Record;

use crate::ServeOutcome;

/// Relative host cost of one point doubling.
pub const HOST_WEIGHT_DOUBLE: u64 = 8;
/// Relative host cost of one point addition.
pub const HOST_WEIGHT_ADD: u64 = 11;
/// Relative host cost of one field inversion.
pub const HOST_WEIGHT_INVERSION: u64 = 80;

/// Weighted host group-operation count — the scalar the energy model
/// scales by.
pub fn weighted_ops(ops: &OpCount) -> u64 {
    ops.doubles as u64 * HOST_WEIGHT_DOUBLE
        + ops.adds as u64 * HOST_WEIGHT_ADD
        + ops.inversions as u64 * HOST_WEIGHT_INVERSION
}

/// Per-request op-cost ratio of a batched run against the
/// batch-size-1 reference over the same traffic (< 1 when batching
/// helps). Both outcomes must cover the same request count.
pub fn op_scale(outcome: &ServeOutcome, reference: &ServeOutcome) -> f64 {
    assert_eq!(
        outcome.config.requests, reference.config.requests,
        "op_scale compares runs over identical traffic"
    );
    let ref_ops = weighted_ops(&reference.ops);
    if ref_ops == 0 {
        return 1.0;
    }
    weighted_ops(&outcome.ops) as f64 / ref_ops as f64
}

/// One simulated design point's verification cost, as produced by the
/// `ule-core` simulator for `Workload::Verify`.
#[derive(Clone, Debug)]
pub struct SimCosts {
    /// Architecture label (`baseline`, `isa_ext`, `monte`, `billie`).
    pub arch: String,
    /// Simulated cycles for one verification.
    pub cycles: u64,
    /// Simulated energy for one verification, µJ.
    pub energy_uj: f64,
    /// Silicon-area proxy, kGE.
    pub area_kge: f64,
}

/// Energy per million requests (µJ) at the given op scale.
pub fn energy_uj_per_million_requests(costs: &SimCosts, scale: f64) -> f64 {
    costs.energy_uj * scale * 1e6
}

/// The `serve_point` record: one (curve, arch, batch size) service run.
pub fn serve_point_record(outcome: &ServeOutcome, scale: f64, costs: &SimCosts) -> Record {
    let cfg = &outcome.config;
    let mut r = Record::new("serve_point");
    r.push("curve", cfg.curve.name())
        .push("arch", costs.arch.as_str())
        .push("batch_size", cfg.batch_size as u64)
        .push("shards", cfg.shards as u64)
        .push("requests", cfg.requests as u64)
        .push("seed", cfg.seed)
        .push("accepted", outcome.accepted as u64)
        .push("rejected", outcome.rejected as u64)
        .push("mismatches", outcome.mismatches as u64)
        .push("batches", outcome.batches as u64)
        .push("rlc_batches", outcome.rlc_batches as u64)
        .push("fallback_batches", outcome.fallback_batches as u64)
        .push("host_doubles", outcome.ops.doubles as u64)
        .push("host_adds", outcome.ops.adds as u64)
        .push("host_inversions", outcome.ops.inversions as u64)
        .push("host_weighted_ops", weighted_ops(&outcome.ops))
        .push("op_scale", scale)
        .push(
            "cycles_per_verify",
            (costs.cycles as f64 * scale).round() as u64,
        )
        .push("energy_uj_per_verify", costs.energy_uj * scale)
        .push(
            "energy_uj_per_million_requests",
            energy_uj_per_million_requests(costs, scale),
        )
        // The two wall-clock fields — the only nondeterministic ones.
        .push("signatures_per_sec", outcome.signatures_per_sec())
        .push("wall_ms", outcome.wall.as_secs_f64() * 1e3);
    r
}

/// The `serve_summary` record: gains of the largest batch size over the
/// batch-size-1 reference, across one batch-size sweep.
pub fn serve_summary_record(runs: &[(ServeOutcome, f64)]) -> Record {
    let reference = runs
        .iter()
        .map(|(o, _)| o)
        .find(|o| o.config.batch_size == 1)
        .expect("summary needs the batch-size-1 reference run");
    let largest = runs
        .iter()
        .map(|(o, _)| o)
        .max_by_key(|o| o.config.batch_size)
        .expect("summary needs at least one run");
    let best = runs
        .iter()
        .map(|(o, _)| o)
        .min_by_key(|o| weighted_ops(&o.ops))
        .expect("summary needs at least one run");
    let gain_ops = weighted_ops(&reference.ops) as f64 / weighted_ops(&largest.ops).max(1) as f64;
    let ref_sps = reference.signatures_per_sec();
    let gain_sps = if ref_sps > 0.0 {
        largest.signatures_per_sec() / ref_sps
    } else {
        0.0
    };
    let cfg = &reference.config;
    let sizes: Vec<String> = runs
        .iter()
        .map(|(o, _)| o.config.batch_size.to_string())
        .collect();
    let mut r = Record::new("serve_summary");
    r.push("curve", cfg.curve.name())
        .push("seed", cfg.seed)
        .push("shards", cfg.shards as u64)
        .push("requests", cfg.requests as u64)
        .push(
            "batch_sizes",
            ule_obs::Value::Raw(format!("[{}]", sizes.join(","))),
        )
        .push("best_batch_size", best.config.batch_size as u64)
        .push("gain_batch", largest.config.batch_size as u64)
        .push("gain_ops", gain_ops)
        .push("gain_sps", gain_sps)
        .push(
            "mismatches",
            runs.iter().map(|(o, _)| o.mismatches as u64).sum::<u64>(),
        );
    r
}

/// Builds the (arch × batch size) Pareto frontier — the batch-size DSE
/// axis — and one `serve_frontier` record per frontier point.
///
/// Point ids are `arch_index * runs.len() + run_index`, matching the
/// order of `costs` and `runs`.
pub fn frontier_records(
    costs: &[SimCosts],
    runs: &[(ServeOutcome, f64)],
) -> (ParetoFront, Vec<Record>) {
    let mut front = ParetoFront::new();
    for (ai, c) in costs.iter().enumerate() {
        for (ri, (_, scale)) in runs.iter().enumerate() {
            front.insert(
                ai * runs.len() + ri,
                Objectives {
                    cycles: (c.cycles as f64 * scale).round() as u64,
                    energy_uj: c.energy_uj * scale,
                    area_kge: c.area_kge,
                },
            );
        }
    }
    let records = front
        .points()
        .iter()
        .map(|p| {
            let (ai, ri) = (p.id / runs.len(), p.id % runs.len());
            let mut r = Record::new("serve_frontier");
            r.push("curve", runs[ri].0.config.curve.name())
                .push("arch", costs[ai].arch.as_str())
                .push("batch_size", runs[ri].0.config.batch_size as u64)
                .push("cycles", p.objectives.cycles)
                .push("energy_uj", p.objectives.energy_uj)
                .push("area_kge", p.objectives.area_kge);
            r
        })
        .collect();
    (front, records)
}

/// What `validate_serve` found in a journal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeCheck {
    /// `serve_point` records seen.
    pub points: usize,
    /// `serve_summary` records seen.
    pub summaries: usize,
    /// `serve_frontier` records seen.
    pub frontier: usize,
    /// Total mismatches across all points (must be 0).
    pub mismatches: u64,
    /// Smallest `gain_ops` across summaries (∞ if none).
    pub min_gain_ops: f64,
}

fn require_u64(doc: &Json, ctx: &str, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing/non-integer key {key:?}"))
}

fn require_f64(doc: &Json, ctx: &str, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing/non-numeric key {key:?}"))
}

/// Validates a serve journal (JSONL text): well-formed records of the
/// v4 schema, zero verdict mismatches, and — when `min_gain_ops` is
/// given — every summary's deterministic batching gain at or above it.
pub fn validate_serve(text: &str, min_gain_ops: Option<f64>) -> Result<ServeCheck, String> {
    let mut check = ServeCheck {
        min_gain_ops: f64::INFINITY,
        ..ServeCheck::default()
    };
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).ok_or_else(|| format!("line {n}: not valid JSON"))?;
        let kind = doc.get("record").and_then(Json::as_str).unwrap_or("");
        let ctx = format!("line {n} ({kind})");
        match kind {
            "serve_point" => {
                for key in [
                    "batch_size",
                    "shards",
                    "requests",
                    "accepted",
                    "rejected",
                    "batches",
                    "rlc_batches",
                    "fallback_batches",
                    "host_weighted_ops",
                ] {
                    require_u64(&doc, &ctx, key)?;
                }
                for key in [
                    "op_scale",
                    "signatures_per_sec",
                    "energy_uj_per_million_requests",
                ] {
                    require_f64(&doc, &ctx, key)?;
                }
                let m = require_u64(&doc, &ctx, "mismatches")?;
                if m != 0 {
                    return Err(format!(
                        "{ctx}: {m} verdict mismatches — batch verifier diverged from verify_prehashed"
                    ));
                }
                let accepted = require_u64(&doc, &ctx, "accepted")?;
                let rejected = require_u64(&doc, &ctx, "rejected")?;
                if accepted + rejected != require_u64(&doc, &ctx, "requests")? {
                    return Err(format!("{ctx}: accepted + rejected != requests"));
                }
                check.points += 1;
            }
            "serve_summary" => {
                let gain = require_f64(&doc, &ctx, "gain_ops")?;
                if require_u64(&doc, &ctx, "mismatches")? != 0 {
                    return Err(format!("{ctx}: nonzero mismatches"));
                }
                if let Some(floor) = min_gain_ops {
                    if gain < floor {
                        return Err(format!(
                            "{ctx}: batching gain {gain:.3}x below the {floor:.2}x floor"
                        ));
                    }
                }
                check.min_gain_ops = check.min_gain_ops.min(gain);
                check.summaries += 1;
            }
            "serve_frontier" => {
                require_u64(&doc, &ctx, "batch_size")?;
                require_f64(&doc, &ctx, "energy_uj")?;
                require_f64(&doc, &ctx, "area_kge")?;
                check.frontier += 1;
            }
            _ => {} // foreign record kinds are fine in a shared journal
        }
    }
    if check.points == 0 {
        return Err("no serve_point records found".into());
    }
    if check.summaries == 0 {
        return Err("no serve_summary record found".into());
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_service, ServeConfig};
    use ule_curves::params::CurveId;

    fn costs() -> Vec<SimCosts> {
        vec![
            SimCosts {
                arch: "baseline".into(),
                cycles: 1_000_000,
                energy_uj: 50.0,
                area_kge: 10.0,
            },
            SimCosts {
                arch: "isa_ext".into(),
                cycles: 400_000,
                energy_uj: 30.0,
                area_kge: 14.0,
            },
        ]
    }

    fn sweep(curve: CurveId) -> Vec<(crate::ServeOutcome, f64)> {
        let mut runs = Vec::new();
        let reference = run_service(&ServeConfig {
            curve,
            requests: 32,
            batch_size: 1,
            shards: 2,
            seed: 9,
        });
        for batch in [1usize, 4, 16] {
            let outcome = if batch == 1 {
                reference.clone()
            } else {
                run_service(&ServeConfig {
                    batch_size: batch,
                    ..reference.config
                })
            };
            let scale = op_scale(&outcome, &reference);
            runs.push((outcome, scale));
        }
        runs
    }

    #[test]
    fn records_validate_and_scale_monotonically() {
        let runs = sweep(CurveId::P192);
        assert_eq!(runs[0].1, 1.0);
        // Shared-table amortization alone guarantees strict savings at
        // any batch size > 1; which of 4/16 wins depends on where the
        // dirty items land, so only compare each against the reference.
        assert!(runs[1].1 < 1.0, "batch 4 must scale below 1: {}", runs[1].1);
        assert!(
            runs[2].1 < 0.9,
            "batch 16 must cut ops by >10%: {}",
            runs[2].1
        );
        let costs = costs();
        let mut text = String::new();
        for (outcome, scale) in &runs {
            text.push_str(&serve_point_record(outcome, *scale, &costs[0]).to_json());
            text.push('\n');
        }
        text.push_str(&serve_summary_record(&runs).to_json());
        text.push('\n');
        let (front, frontier) = frontier_records(&costs, &runs);
        assert!(!front.is_empty());
        for r in &frontier {
            text.push_str(&r.to_json());
            text.push('\n');
        }
        let check = validate_serve(&text, Some(1.05)).expect("journal validates");
        assert_eq!(check.points, 3);
        assert_eq!(check.summaries, 1);
        assert!(check.frontier >= 1);
        assert_eq!(check.mismatches, 0);
        assert!(check.min_gain_ops > 1.05);
    }

    #[test]
    fn frontier_prefers_batched_points_within_an_arch() {
        let runs = sweep(CurveId::P192);
        let (front, _) = frontier_records(&costs(), &runs);
        // Within one arch, area is constant and cycles/energy share
        // one scale factor, so only the cheapest batch size survives —
        // never the unbatched reference (ids 0 and runs.len()).
        assert!(!front.contains(0));
        assert!(!front.contains(runs.len()));
        for p in front.points() {
            assert_ne!(p.id % runs.len(), 0, "batch 1 cannot be on the frontier");
        }
    }

    #[test]
    fn validator_rejects_mismatches_and_weak_gains() {
        let runs = sweep(CurveId::P192);
        let good = format!(
            "{}\n{}\n",
            serve_point_record(&runs[0].0, runs[0].1, &costs()[0]).to_json(),
            serve_summary_record(&runs).to_json()
        );
        assert!(validate_serve(&good, None).is_ok());
        assert!(validate_serve(&good, Some(1e9)).is_err());
        let tampered = good.replace("\"mismatches\":0", "\"mismatches\":3");
        assert!(validate_serve(&tampered, None).is_err());
        assert!(validate_serve("", None).is_err());
        assert!(validate_serve("{\"record\":\"serve_point\"}\n", None).is_err());
    }
}
