//! `ule-serve` — a deterministic high-throughput signing/verification
//! *service model* layered over the host-level curve arithmetic.
//!
//! The paper sizes single devices; this crate asks the dual question:
//! given one simulated design point (cycles/energy/area per
//! verification from `ule-core`), what does a *server* front-end that
//! batches incoming signatures buy in throughput and energy per
//! request? The answer feeds the batch-size axis into the `ule-dse`
//! Pareto frontier.
//!
//! Layout:
//!
//! * [`request`] — seeded arrival generation: typed [`request::Request`]
//!   queues with a deterministic valid/tampered/reject-path mix, sharded
//!   by key.
//! * [`engine`] — the sharded worker pool (same scoped-thread fan-out
//!   and graceful spawn-failure degradation as the `ule-bench` sweep
//!   engine) driving `ule_curves::ecdsa::verify_batch_prehashed`.
//! * [`metrics`] — `serve_point` / `serve_summary` / `serve_frontier`
//!   records (schema v4), the host op-cost energy scaling, and the
//!   journal validator behind `repro check --serve`.
//!
//! Determinism contract: every field of every record except the two
//! wall-clock ones (`signatures_per_sec`, `wall_ms`) is a pure function
//! of `(curve, seed, requests, shards, batch_size)` — verdicts, op
//! censuses, scaling factors and frontiers are bit-for-bit reproducible
//! across thread counts and spawn failures (see `DESIGN.md` §13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod request;

use std::time::Duration;
use ule_curves::params::CurveId;
use ule_curves::scalar::OpCount;

/// One service-model run: the traffic shape and the batching policy.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// The curve every shard signs and verifies on.
    pub curve: CurveId,
    /// Total requests across all shards.
    pub requests: usize,
    /// Verification batch size (1 = per-signature verification).
    pub batch_size: usize,
    /// Worker shards, each with its own keypair and request queue.
    pub shards: usize,
    /// Seed for traffic generation and RLC coefficients.
    pub seed: u64,
}

impl ServeConfig {
    /// A service run with the given curve and defaults elsewhere
    /// (256 requests, batch size 16, 4 shards, seed 7).
    pub fn new(curve: CurveId) -> Self {
        ServeConfig {
            curve,
            requests: 256,
            batch_size: 16,
            shards: 4,
            seed: 7,
        }
    }
}

/// Aggregated outcome of one service run.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The configuration that produced it.
    pub config: ServeConfig,
    /// Requests accepted (signature verified).
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Responses whose verdict differed from the generator's
    /// expectation — must be zero; a nonzero count means the batch
    /// verifier diverged from `verify_prehashed`.
    pub mismatches: usize,
    /// Verification batches processed.
    pub batches: usize,
    /// Batches proven by the random-linear-combination fast path.
    pub rlc_batches: usize,
    /// Batches that fell back to per-item verification.
    pub fallback_batches: usize,
    /// Total host group-operation census across all batches.
    pub ops: OpCount,
    /// Wall-clock time spent verifying (generation excluded).
    pub wall: Duration,
}

impl ServeOutcome {
    /// Verified signatures per wall-clock second (nondeterministic;
    /// every other field is seed-deterministic).
    pub fn signatures_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.accepted + self.rejected) as f64 / secs
    }
}

/// Runs the full service model: plans sharded traffic from the seed,
/// fans the shards out across workers, and aggregates the outcome.
pub fn run_service(cfg: &ServeConfig) -> ServeOutcome {
    let curve = cfg.curve.curve();
    let plans = request::plan_shards(&curve, cfg);
    let t0 = std::time::Instant::now();
    let shard_outcomes = engine::run_shards(&curve, &plans, cfg.batch_size, cfg.seed);
    let wall = t0.elapsed();

    let mut out = ServeOutcome {
        config: *cfg,
        accepted: 0,
        rejected: 0,
        mismatches: 0,
        batches: 0,
        rlc_batches: 0,
        fallback_batches: 0,
        ops: OpCount::default(),
        wall,
    };
    for s in &shard_outcomes {
        out.accepted += s.accepted;
        out.rejected += s.rejected;
        out.mismatches += s.mismatches;
        out.batches += s.batches;
        out.rlc_batches += s.rlc_batches;
        out.fallback_batches += s.fallback_batches;
        out.ops += s.ops;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(curve: CurveId, batch: usize) -> ServeConfig {
        ServeConfig {
            curve,
            requests: 48,
            batch_size: batch,
            shards: 3,
            seed: 0x5e7e,
        }
    }

    #[test]
    fn outcomes_are_deterministic_and_exact() {
        for curve in [CurveId::P192, CurveId::K163] {
            let cfg = small(curve, 8);
            let a = run_service(&cfg);
            let b = run_service(&cfg);
            assert_eq!(a.mismatches, 0, "{curve:?}: batch verdicts diverged");
            assert_eq!(a.accepted + a.rejected, cfg.requests);
            assert!(a.rejected > 0, "traffic mix should include invalid items");
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.rlc_batches, b.rlc_batches);
            assert!(a.rlc_batches > 0, "some all-valid batch should take RLC");
            assert!(a.fallback_batches > 0, "tampered batches must fall back");
        }
    }

    #[test]
    fn batch_one_never_uses_rlc_and_spends_more_ops() {
        let single = run_service(&small(CurveId::P192, 1));
        let batched = run_service(&small(CurveId::P192, 16));
        assert_eq!(single.mismatches, 0);
        assert_eq!(batched.mismatches, 0);
        assert_eq!(single.rlc_batches, 0);
        assert_eq!(single.batches, 48);
        // Same verdicts regardless of batching policy.
        assert_eq!(single.accepted, batched.accepted);
        let w1 = metrics::weighted_ops(&single.ops);
        let w16 = metrics::weighted_ops(&batched.ops);
        // The stratified mix packs three special items into this tiny
        // run, so most batches pay a doomed RLC attempt *and* the full
        // fallback — the bound here is the guaranteed worst case, not
        // the ~1.9x gain of realistic 1-in-64 traffic (gated in CI on
        // the 256-request smoke run).
        assert!(
            (w16 as f64) < 0.9 * w1 as f64,
            "batch 16 should cut weighted host ops: {w16} vs {w1}"
        );
    }

    #[test]
    fn spawn_failures_do_not_change_the_outcome() {
        let cfg = small(CurveId::P192, 4);
        let reference = run_service(&cfg);
        let _guard = ule_testkit::threads::fail_next_spawns(64);
        let degraded = run_service(&cfg);
        assert_eq!(reference.accepted, degraded.accepted);
        assert_eq!(reference.rejected, degraded.rejected);
        assert_eq!(reference.ops, degraded.ops);
        assert_eq!(reference.rlc_batches, degraded.rlc_batches);
    }
}
