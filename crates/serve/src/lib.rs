//! `ule-serve` — a deterministic high-throughput signing/verification
//! *service model* layered over the host-level curve arithmetic.
//!
//! The paper sizes single devices; this crate asks the dual question:
//! given one simulated design point (cycles/energy/area per
//! verification from `ule-core`), what does a *server* front-end that
//! batches incoming signatures buy in throughput, energy per request
//! — and, since requests now arrive on a virtual clock, *latency*?
//! The answer feeds the batch-size axis into the `ule-dse` Pareto
//! frontier and the p99-latency × energy SLA records.
//!
//! Layout:
//!
//! * [`request`] — seeded arrival generation: typed [`request::Request`]
//!   queues with a deterministic valid/tampered/reject-path mix, keys
//!   per 64-request window, arrival timestamps, and a global batch
//!   sequence dealt round-robin across shards.
//! * [`engine`] — the sharded worker pool (same scoped-thread fan-out
//!   and graceful spawn-failure degradation as the `ule-bench` sweep
//!   engine) driving `ule_curves::ecdsa::verify_batch_prehashed` and
//!   advancing each shard's virtual clock.
//! * [`vtime`] — the virtual-time cost model and fleet telemetry
//!   (latency histograms, queue depth, per-shard utilization).
//! * [`metrics`] — `serve_point` / `serve_summary` / `serve_frontier` /
//!   `serve_latency` / `sla_summary` records (schema v5), the host
//!   op-cost energy scaling, and the journal validators behind
//!   `repro check --serve` and `repro check --sla`.
//!
//! Determinism contract: every field of every record except the two
//! wall-clock ones (`signatures_per_sec`, `wall_ms`) is a pure function
//! of `(curve, seed, requests, shards, batch_size, arrival_rate,
//! cycles_per_verify)` — verdicts, op censuses, scaling factors,
//! frontiers, latency histograms and queue telemetry are bit-for-bit
//! reproducible across thread counts and spawn failures (see
//! `DESIGN.md` §13–§14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod request;
pub mod vtime;

use std::time::Duration;
use ule_curves::params::CurveId;
use ule_curves::scalar::OpCount;

/// One service-model run: the traffic shape and the batching policy.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// The curve every window signs and verifies on.
    pub curve: CurveId,
    /// Total requests across all shards.
    pub requests: usize,
    /// Verification batch size (1 = per-signature verification;
    /// capped at [`request::KEY_WINDOW`], a batch has one key).
    pub batch_size: usize,
    /// Worker shards; batch `g` executes on shard `g % shards`.
    pub shards: usize,
    /// Seed for traffic generation and RLC coefficients.
    pub seed: u64,
    /// Offered load in units of single-verify service time: the mean
    /// inter-arrival gap is `cycles_per_verify / arrival_rate` virtual
    /// cycles. The 0.25 default keeps every shard ahead of its queue,
    /// so latencies are shard-count-invariant (see `DESIGN.md` §14).
    pub arrival_rate: f64,
    /// Simulated cycles of one unbatched verification — the virtual
    /// clock's anchor. The CLI fills this from the `ule-core`
    /// simulator; the library default (1M cycles) keeps unit tests
    /// simulator-free.
    pub cycles_per_verify: u64,
}

impl ServeConfig {
    /// A service run with the given curve and defaults elsewhere
    /// (256 requests, batch size 16, 4 shards, seed 7, arrival rate
    /// 0.25, 1M cycles per verification).
    pub fn new(curve: CurveId) -> Self {
        ServeConfig {
            curve,
            requests: 256,
            batch_size: 16,
            shards: 4,
            seed: 7,
            arrival_rate: 0.25,
            cycles_per_verify: 1_000_000,
        }
    }
}

/// Aggregated outcome of one service run.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The configuration that produced it.
    pub config: ServeConfig,
    /// Requests accepted (signature verified).
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Responses whose verdict differed from the generator's
    /// expectation — must be zero; a nonzero count means the batch
    /// verifier diverged from `verify_prehashed`.
    pub mismatches: usize,
    /// Verification batches processed.
    pub batches: usize,
    /// Batches proven by the random-linear-combination fast path.
    pub rlc_batches: usize,
    /// Batches that fell back to per-item verification.
    pub fallback_batches: usize,
    /// Total host group-operation census across all batches.
    pub ops: OpCount,
    /// Virtual-time telemetry: latency histograms (per shard + fleet),
    /// batch traces, queue depth and per-shard utilization.
    pub telemetry: vtime::Telemetry,
    /// Wall-clock time spent verifying (generation excluded).
    pub wall: Duration,
}

impl ServeOutcome {
    /// Verified signatures per wall-clock second (nondeterministic;
    /// every other field is seed-deterministic).
    pub fn signatures_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.accepted + self.rejected) as f64 / secs
    }
}

/// Runs the full service model: plans the global batch sequence from
/// the seed, fans the shards out across workers, and aggregates
/// verdicts and virtual-time telemetry.
pub fn run_service(cfg: &ServeConfig) -> ServeOutcome {
    let curve = cfg.curve.curve();
    let plans = request::plan_shards(&curve, cfg);
    let model = vtime::CostModel::for_curve(&curve, cfg.cycles_per_verify);
    let t0 = std::time::Instant::now();
    let shard_outcomes = engine::run_shards(&curve, &plans, cfg.seed, &model);
    let wall = t0.elapsed();

    let telemetry = vtime::aggregate(&shard_outcomes);
    let mut out = ServeOutcome {
        config: *cfg,
        accepted: 0,
        rejected: 0,
        mismatches: 0,
        batches: 0,
        rlc_batches: 0,
        fallback_batches: 0,
        ops: OpCount::default(),
        telemetry,
        wall,
    };
    for s in &shard_outcomes {
        out.accepted += s.accepted;
        out.rejected += s.rejected;
        out.mismatches += s.mismatches;
        out.batches += s.batches;
        out.rlc_batches += s.rlc_batches;
        out.fallback_batches += s.fallback_batches;
        out.ops += s.ops;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(curve: CurveId, batch: usize) -> ServeConfig {
        ServeConfig {
            requests: 48,
            batch_size: batch,
            shards: 3,
            seed: 0x5e7e,
            ..ServeConfig::new(curve)
        }
    }

    #[test]
    fn outcomes_are_deterministic_and_exact() {
        for curve in [CurveId::P192, CurveId::K163] {
            let cfg = small(curve, 8);
            let a = run_service(&cfg);
            let b = run_service(&cfg);
            assert_eq!(a.mismatches, 0, "{curve:?}: batch verdicts diverged");
            assert_eq!(a.accepted + a.rejected, cfg.requests);
            assert!(a.rejected > 0, "traffic mix should include invalid items");
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.rlc_batches, b.rlc_batches);
            assert!(a.rlc_batches > 0, "some all-valid batch should take RLC");
            assert!(a.fallback_batches > 0, "tampered batches must fall back");
            assert_eq!(a.telemetry.fleet_hist, b.telemetry.fleet_hist);
            assert_eq!(a.telemetry.traces, b.telemetry.traces);
            assert_eq!(a.telemetry.queue_depth_max, b.telemetry.queue_depth_max);
            assert_eq!(
                a.telemetry.fleet_hist.count(),
                cfg.requests as u64,
                "every request gets exactly one latency sample"
            );
        }
    }

    #[test]
    fn batch_one_never_uses_rlc_and_spends_more_ops() {
        let single = run_service(&small(CurveId::P192, 1));
        let batched = run_service(&small(CurveId::P192, 16));
        assert_eq!(single.mismatches, 0);
        assert_eq!(batched.mismatches, 0);
        assert_eq!(single.rlc_batches, 0);
        assert_eq!(single.batches, 48);
        // Same verdicts regardless of batching policy.
        assert_eq!(single.accepted, batched.accepted);
        let w1 = metrics::weighted_ops(&single.ops);
        let w16 = metrics::weighted_ops(&batched.ops);
        // The stratified mix packs three special items into this tiny
        // run, so most batches pay a doomed RLC attempt *and* the full
        // fallback — the bound here is the guaranteed worst case, not
        // the ~1.9x gain of realistic 1-in-64 traffic (gated in CI on
        // the 256-request smoke run).
        assert!(
            (w16 as f64) < 0.9 * w1 as f64,
            "batch 16 should cut weighted host ops: {w16} vs {w1}"
        );
    }

    #[test]
    fn spawn_failures_do_not_change_the_outcome() {
        let cfg = small(CurveId::P192, 4);
        let reference = run_service(&cfg);
        let _guard = ule_testkit::threads::fail_next_spawns(64);
        let degraded = run_service(&cfg);
        assert_eq!(reference.accepted, degraded.accepted);
        assert_eq!(reference.rejected, degraded.rejected);
        assert_eq!(reference.ops, degraded.ops);
        assert_eq!(reference.rlc_batches, degraded.rlc_batches);
        assert_eq!(
            reference.telemetry.fleet_hist, degraded.telemetry.fleet_hist,
            "virtual-time latency must not see worker degradation"
        );
        assert_eq!(reference.telemetry.traces, degraded.telemetry.traces);
        assert_eq!(
            reference.telemetry.utilization,
            degraded.telemetry.utilization
        );
    }

    /// The acceptance property behind the CI `sla` job: at the
    /// un-congested default arrival rate, the merged latency histogram
    /// is identical across shard counts — sharding re-partitions the
    /// same virtual timeline instead of changing it.
    #[test]
    fn merged_latency_is_shard_count_invariant_when_uncongested() {
        // Batch size 1 is the tightest case: whole-verification service
        // times against single-request gaps — the arrival floor in
        // `plan_arrivals` is what keeps even a 1-shard fleet ahead.
        for batch in [1usize, 8] {
            let base = ServeConfig {
                requests: 96,
                batch_size: batch,
                seed: 0xa11ce,
                ..ServeConfig::new(CurveId::P192)
            };
            let two = run_service(&ServeConfig { shards: 2, ..base });
            let four = run_service(&ServeConfig { shards: 4, ..base });
            assert_eq!(two.telemetry.fleet_hist, four.telemetry.fleet_hist);
            assert_eq!(
                two.telemetry.queue_depth_max,
                four.telemetry.queue_depth_max
            );
            assert_eq!(two.telemetry.horizon_cycles, four.telemetry.horizon_cycles);
            // No batch ever waited on a busy shard.
            for t in &two.telemetry.traces {
                assert_eq!(t.start_cycles, t.ready_cycles, "batch {} queued", t.index);
            }
            assert_eq!(two.telemetry.shard_hists.len(), 2);
            assert_eq!(four.telemetry.shard_hists.len(), 4);
        }
    }

    /// Pushing the arrival rate past the fleet's capacity must surface
    /// as server-queue waits and a fatter latency tail — the load knob
    /// actually models load.
    #[test]
    fn congestion_raises_latency() {
        // Brisk but under capacity: at very slow rates the batch-
        // assembly wait (filling 8 slots) dominates latency, so the
        // fair congestion baseline is a rate where batches fill
        // quickly yet no shard falls behind.
        let relaxed = ServeConfig {
            requests: 128,
            batch_size: 8,
            shards: 2,
            seed: 0xbeef,
            arrival_rate: 1.0,
            ..ServeConfig::new(CurveId::P192)
        };
        let slammed = ServeConfig {
            arrival_rate: 64.0,
            ..relaxed
        };
        let a = run_service(&relaxed);
        let b = run_service(&slammed);
        let queued = b
            .telemetry
            .traces
            .iter()
            .filter(|t| t.start_cycles > t.ready_cycles)
            .count();
        assert!(queued > 0, "overload must produce server-queue waits");
        assert!(
            b.telemetry.fleet_hist.percentile(99.0) > a.telemetry.fleet_hist.percentile(99.0),
            "p99 must grow under overload"
        );
        assert!(b.telemetry.queue_depth_max > a.telemetry.queue_depth_max);
        // Verdicts and op censuses never depend on the arrival rate.
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.ops, b.ops);
    }
}
