//! The sharded verification engine: scoped-thread fan-out over shard
//! batch queues, mirroring the `ule-bench` sweep engine's pool idiom —
//! an atomic work index, per-slot mutexes, and graceful degradation
//! when a worker thread cannot be spawned (already-spawned workers, or
//! the caller thread itself, drain the same queue; results are
//! identical either way).
//!
//! Each shard also advances its own *virtual clock* (see
//! [`crate::vtime`]): batches start at `max(shard_clock, ready)` and
//! finish `service_cycles` later, so every latency figure is computed
//! from the plan, never from the host's wall clock — worker-thread
//! degradation cannot perturb a single histogram bucket.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use ule_curves::ecdsa::{self, BatchItem};
use ule_curves::params::Curve;
use ule_curves::scalar::OpCount;
use ule_obs::hist::LatencyHist;

use crate::request::{Response, ShardPlan};
use crate::vtime::{BatchTrace, CostModel};

/// One shard's verification results.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// Per-request responses, in batch order.
    pub responses: Vec<Response>,
    /// Requests accepted.
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Responses disagreeing with the generator's expectation.
    pub mismatches: usize,
    /// Batches processed.
    pub batches: usize,
    /// Batches proven whole by the RLC fast path.
    pub rlc_batches: usize,
    /// Batches that fell back to per-item verification.
    pub fallback_batches: usize,
    /// Host group-operation census for the shard.
    pub ops: OpCount,
    /// Latency histogram of the shard's requests (virtual cycles).
    pub hist: LatencyHist,
    /// The shard's executed batches on the virtual timeline.
    pub traces: Vec<BatchTrace>,
    /// Virtual cycles the shard spent verifying.
    pub busy_cycles: u64,
}

/// Verifies every shard's batch queue, fanning shards out across up to
/// `plans.len()` worker threads. Verdicts, op censuses and the whole
/// virtual timeline are a pure function of the plans, `seed` and
/// `model`; only wall-clock timing varies with the pool width.
pub fn run_shards(
    curve: &Curve,
    plans: &[ShardPlan],
    seed: u64,
    model: &CostModel,
) -> Vec<ShardOutcome> {
    let workers = plans.len().max(1);
    let mut results: Vec<Option<ShardOutcome>> = (0..plans.len()).map(|_| None).collect();
    if workers == 1 {
        if let Some((slot, plan)) = results.iter_mut().zip(plans).next() {
            *slot = Some(process_shard(curve, plan, seed, model));
        }
        return results.into_iter().flatten().collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Option<ShardOutcome>>> = results.iter_mut().map(Mutex::new).collect();
    let worker_loop = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(plan) = plans.get(i) else {
            break;
        };
        let outcome = process_shard(curve, plan, seed, model);
        **slots[i].lock().expect("serve slot lock poisoned") = Some(outcome);
    };
    std::thread::scope(|scope| {
        let worker_loop = &worker_loop;
        let mut spawned = 0usize;
        for worker in 0..workers {
            // Same contract as the sweep engine: a spawn failure
            // shrinks the pool instead of panicking, and with no pool
            // at all the caller thread drains the queue itself.
            let spawn = if ule_testkit::threads::spawn_blocked() {
                Err(std::io::Error::other("spawn blocked by test shim"))
            } else {
                std::thread::Builder::new()
                    .name(format!("serve-{worker}"))
                    .spawn_scoped(scope, worker_loop)
                    .map(|_| ())
            };
            match spawn {
                Ok(()) => spawned += 1,
                Err(err) => {
                    ule_obs::obs_warn_once!(
                        "serve shard spawn failed; continuing with fewer workers",
                        requested = workers,
                        spawned = spawned,
                        error = err.to_string(),
                    );
                    break;
                }
            }
        }
        if spawned == 0 {
            worker_loop();
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every shard slot filled"))
        .collect()
}

/// Verifies one shard's batches in global-index order, advancing the
/// shard's virtual clock as it goes.
fn process_shard(curve: &Curve, plan: &ShardPlan, seed: u64, model: &CostModel) -> ShardOutcome {
    let mut out = ShardOutcome {
        shard: plan.shard,
        responses: Vec::with_capacity(plan.requests()),
        accepted: 0,
        rejected: 0,
        mismatches: 0,
        batches: 0,
        rlc_batches: 0,
        fallback_batches: 0,
        ops: OpCount::default(),
        hist: LatencyHist::new(),
        traces: Vec::with_capacity(plan.batches.len()),
        busy_cycles: 0,
    };
    let mut clock = 0u64;
    for batch in &plan.batches {
        let public = batch.keys.public();
        let items: Vec<BatchItem> = batch.requests.iter().map(|r| r.item.clone()).collect();
        // Distinct RLC coin per (run, global batch): a forged batch
        // that survived one draw would face fresh coefficients on any
        // retry. Keyed on the *global* index, not the shard, so the
        // verdict stream is shard-count-invariant.
        let batch_seed = seed ^ ((batch.index as u64) << 8) ^ 0x62a7;
        let verdict = ecdsa::verify_batch_prehashed(curve, &public, &items, batch_seed);
        out.batches += 1;
        if verdict.rlc_accepted {
            out.rlc_batches += 1;
        } else {
            out.fallback_batches += 1;
        }
        let service = model.service_cycles(crate::metrics::weighted_ops(&verdict.ops));
        out.ops += verdict.ops;
        // Virtual timeline: the batch is ready once its last request
        // arrived; the shard picks it up as soon as it is idle.
        let ready = batch
            .requests
            .iter()
            .map(|r| r.arrival_cycles)
            .max()
            .unwrap_or(0);
        let start = clock.max(ready);
        let end = start + service;
        clock = end;
        out.busy_cycles += service;
        out.traces.push(BatchTrace {
            index: batch.index,
            shard: plan.shard,
            items: batch.requests.len(),
            ready_cycles: ready,
            start_cycles: start,
            end_cycles: end,
            service_cycles: service,
        });
        for (request, ok) in batch.requests.iter().zip(&verdict.ok) {
            if *ok {
                out.accepted += 1;
            } else {
                out.rejected += 1;
            }
            if *ok != request.expect_ok {
                out.mismatches += 1;
            }
            out.hist.record(end - request.arrival_cycles);
            out.responses.push(Response {
                id: request.id,
                ok: *ok,
                expect_ok: request.expect_ok,
                arrival_cycles: request.arrival_cycles,
                done_cycles: end,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::plan_shards;
    use crate::ServeConfig;
    use ule_curves::params::CurveId;

    fn model(curve: CurveId, cfg: &ServeConfig) -> CostModel {
        CostModel::for_curve(&curve.curve(), cfg.cycles_per_verify)
    }

    #[test]
    fn sharded_run_matches_sequential_processing() {
        let curve = CurveId::P192.curve();
        let cfg = ServeConfig {
            requests: 40,
            batch_size: 4,
            shards: 4,
            seed: 11,
            ..ServeConfig::new(CurveId::P192)
        };
        let m = model(CurveId::P192, &cfg);
        let plans = plan_shards(&curve, &cfg);
        let pooled = run_shards(&curve, &plans, cfg.seed, &m);
        let sequential: Vec<ShardOutcome> = plans
            .iter()
            .map(|p| process_shard(&curve, p, cfg.seed, &m))
            .collect();
        for (a, b) in pooled.iter().zip(&sequential) {
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.hist, b.hist, "virtual timing must not see the pool");
            assert_eq!(a.traces, b.traces);
            assert_eq!(a.responses.len(), b.responses.len());
            for (ra, rb) in a.responses.iter().zip(&b.responses) {
                assert_eq!(
                    (ra.id, ra.ok, ra.done_cycles),
                    (rb.id, rb.ok, rb.done_cycles)
                );
            }
        }
    }

    #[test]
    fn responses_preserve_batch_order_and_time_moves_forward() {
        let curve = CurveId::K163.curve();
        let cfg = ServeConfig {
            requests: 30,
            batch_size: 7, // deliberately not a divisor: ragged batches
            shards: 2,
            seed: 3,
            ..ServeConfig::new(CurveId::K163)
        };
        let plans = plan_shards(&curve, &cfg);
        let outcomes = run_shards(&curve, &plans, cfg.seed, &model(CurveId::K163, &cfg));
        for (plan, outcome) in plans.iter().zip(&outcomes) {
            assert_eq!(outcome.mismatches, 0);
            let want: Vec<u64> = plan
                .batches
                .iter()
                .flat_map(|b| b.requests.iter().map(|r| r.id))
                .collect();
            let got: Vec<u64> = outcome.responses.iter().map(|r| r.id).collect();
            assert_eq!(want, got);
            for r in &outcome.responses {
                assert!(
                    r.done_cycles > r.arrival_cycles,
                    "request {} answered before it arrived",
                    r.id
                );
            }
            let mut prev_end = 0u64;
            for t in &outcome.traces {
                assert!(t.start_cycles >= t.ready_cycles);
                assert!(
                    t.start_cycles >= prev_end,
                    "shard served two batches at once"
                );
                assert_eq!(t.end_cycles - t.start_cycles, t.service_cycles);
                prev_end = t.end_cycles;
            }
            assert_eq!(outcome.hist.count(), outcome.responses.len() as u64);
        }
    }
}
