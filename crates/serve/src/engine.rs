//! The sharded verification engine: scoped-thread fan-out over shard
//! queues, mirroring the `ule-bench` sweep engine's pool idiom —
//! an atomic work index, per-slot mutexes, and graceful degradation
//! when a worker thread cannot be spawned (already-spawned workers, or
//! the caller thread itself, drain the same queue; results are
//! identical either way).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use ule_curves::ecdsa::{self, BatchItem};
use ule_curves::params::Curve;
use ule_curves::scalar::OpCount;

use crate::request::{Response, ShardPlan};

/// One shard's verification results.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// Per-request responses, in arrival order.
    pub responses: Vec<Response>,
    /// Requests accepted.
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Responses disagreeing with the generator's expectation.
    pub mismatches: usize,
    /// Batches processed.
    pub batches: usize,
    /// Batches proven whole by the RLC fast path.
    pub rlc_batches: usize,
    /// Batches that fell back to per-item verification.
    pub fallback_batches: usize,
    /// Host group-operation census for the shard.
    pub ops: OpCount,
}

/// Verifies every shard's queue in `batch_size` chunks, fanning shards
/// out across up to `plans.len()` worker threads. Verdicts and op
/// censuses are a pure function of the plans and `seed`; only timing
/// varies with the pool width.
pub fn run_shards(
    curve: &Curve,
    plans: &[ShardPlan],
    batch_size: usize,
    seed: u64,
) -> Vec<ShardOutcome> {
    let workers = plans.len().max(1);
    let mut results: Vec<Option<ShardOutcome>> = (0..plans.len()).map(|_| None).collect();
    if workers == 1 {
        if let Some((slot, plan)) = results.iter_mut().zip(plans).next() {
            *slot = Some(process_shard(curve, plan, batch_size, seed));
        }
        return results.into_iter().flatten().collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Option<ShardOutcome>>> = results.iter_mut().map(Mutex::new).collect();
    let worker_loop = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(plan) = plans.get(i) else {
            break;
        };
        let outcome = process_shard(curve, plan, batch_size, seed);
        **slots[i].lock().expect("serve slot lock poisoned") = Some(outcome);
    };
    std::thread::scope(|scope| {
        let worker_loop = &worker_loop;
        let mut spawned = 0usize;
        for worker in 0..workers {
            // Same contract as the sweep engine: a spawn failure
            // shrinks the pool instead of panicking, and with no pool
            // at all the caller thread drains the queue itself.
            let spawn = if ule_testkit::threads::spawn_blocked() {
                Err(std::io::Error::other("spawn blocked by test shim"))
            } else {
                std::thread::Builder::new()
                    .name(format!("serve-{worker}"))
                    .spawn_scoped(scope, worker_loop)
                    .map(|_| ())
            };
            match spawn {
                Ok(()) => spawned += 1,
                Err(err) => {
                    ule_obs::obs_warn_once!(
                        "serve shard spawn failed; continuing with fewer workers",
                        requested = workers,
                        spawned = spawned,
                        error = err.to_string(),
                    );
                    break;
                }
            }
        }
        if spawned == 0 {
            worker_loop();
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every shard slot filled"))
        .collect()
}

/// Verifies one shard's queue in order, chunked into batches.
fn process_shard(curve: &Curve, plan: &ShardPlan, batch_size: usize, seed: u64) -> ShardOutcome {
    let batch_size = batch_size.max(1);
    let public = plan.keys.public();
    let mut out = ShardOutcome {
        shard: plan.shard,
        responses: Vec::with_capacity(plan.requests.len()),
        accepted: 0,
        rejected: 0,
        mismatches: 0,
        batches: 0,
        rlc_batches: 0,
        fallback_batches: 0,
        ops: OpCount::default(),
    };
    for (chunk_index, chunk) in plan.requests.chunks(batch_size).enumerate() {
        let items: Vec<BatchItem> = chunk.iter().map(|r| r.item.clone()).collect();
        // Distinct RLC coin per (run, shard, batch): a forged batch
        // that survived one draw would face fresh coefficients on any
        // retry elsewhere.
        let batch_seed = seed ^ ((plan.shard as u64) << 40) ^ ((chunk_index as u64) << 8) ^ 0x62a7;
        let verdict = ecdsa::verify_batch_prehashed(curve, &public, &items, batch_seed);
        out.batches += 1;
        if verdict.rlc_accepted {
            out.rlc_batches += 1;
        } else {
            out.fallback_batches += 1;
        }
        out.ops += verdict.ops;
        for (request, ok) in chunk.iter().zip(&verdict.ok) {
            if *ok {
                out.accepted += 1;
            } else {
                out.rejected += 1;
            }
            if *ok != request.expect_ok {
                out.mismatches += 1;
            }
            out.responses.push(Response {
                id: request.id,
                ok: *ok,
                expect_ok: request.expect_ok,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::plan_shards;
    use crate::ServeConfig;
    use ule_curves::params::CurveId;

    #[test]
    fn sharded_run_matches_sequential_processing() {
        let curve = CurveId::P192.curve();
        let cfg = ServeConfig {
            curve: CurveId::P192,
            requests: 40,
            batch_size: 4,
            shards: 4,
            seed: 11,
        };
        let plans = plan_shards(&curve, &cfg);
        let pooled = run_shards(&curve, &plans, cfg.batch_size, cfg.seed);
        let sequential: Vec<ShardOutcome> = plans
            .iter()
            .map(|p| process_shard(&curve, p, cfg.batch_size, cfg.seed))
            .collect();
        for (a, b) in pooled.iter().zip(&sequential) {
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.responses.len(), b.responses.len());
            for (ra, rb) in a.responses.iter().zip(&b.responses) {
                assert_eq!((ra.id, ra.ok), (rb.id, rb.ok));
            }
        }
    }

    #[test]
    fn responses_preserve_arrival_order_per_shard() {
        let curve = CurveId::K163.curve();
        let cfg = ServeConfig {
            curve: CurveId::K163,
            requests: 30,
            batch_size: 7, // deliberately not a divisor: last batch ragged
            shards: 2,
            seed: 3,
        };
        let plans = plan_shards(&curve, &cfg);
        let outcomes = run_shards(&curve, &plans, cfg.batch_size, cfg.seed);
        for (plan, outcome) in plans.iter().zip(&outcomes) {
            assert_eq!(outcome.mismatches, 0);
            let want: Vec<u64> = plan.requests.iter().map(|r| r.id).collect();
            let got: Vec<u64> = outcome.responses.iter().map(|r| r.id).collect();
            assert_eq!(want, got);
        }
    }
}
