//! Seeded arrival generation: the service front-end's request queues.
//!
//! Traffic is planned, not streamed: `plan_shards` derives every
//! request of the run from the seed up front — payload, expected
//! verdict *and arrival timestamp in simulated cycles* — so the engine
//! can check the batch verifier request-by-request and replay the
//! whole run on a virtual clock. The mix mirrors what a verification
//! front-end actually sees — mostly valid signatures with nonce-point
//! hints, a trickle of tampered and out-of-range ones, and some
//! hint-less clients — with the invalid fraction low enough that most
//! full batches stay on the RLC fast path.
//!
//! # Sharding is an execution policy, not a traffic property
//!
//! Keys are derived per [`KEY_WINDOW`]-request *window* (the same
//! window the kind stratification uses), batches are cut inside
//! windows (so every batch verifies under a single key), and batch `g`
//! executes on shard `g mod shards`. Payloads, verdicts, op censuses
//! and batch composition are therefore pure functions of
//! `(curve, seed, requests, batch_size)` — changing `--shards` only
//! re-partitions the same batches across workers, which is what makes
//! merged per-shard latency histograms shard-count-invariant (see
//! `DESIGN.md` §14).

use crate::ServeConfig;
use ule_curves::ecdsa::{self, BatchItem, Keypair};
use ule_curves::params::Curve;
use ule_mpmath::mp::Mp;

/// Requests per key window: each window of consecutive request ids
/// signs under one derived keypair and carries exactly one of each
/// special request kind. Batches never straddle a window boundary, so
/// `batch_size` is effectively capped here (a batch verifies under a
/// single public key).
pub const KEY_WINDOW: usize = 64;

/// What the generator did to a request before enqueueing it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RequestKind {
    /// A well-formed signature with the signer's `R = k·G` hint.
    Valid,
    /// A well-formed signature whose client sent no hint (forces the
    /// whole batch onto the exact fallback path).
    HintlessValid,
    /// A valid signature with one bit of `s` flipped.
    TamperedSig,
    /// `r` or `s` outside `[1, n)` — the zero-cost reject path.
    RangeReject,
}

/// One queued verification request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Monotone id, unique across the run.
    pub id: u64,
    /// Arrival timestamp on the virtual clock, simulated cycles.
    pub arrival_cycles: u64,
    /// The batch-verification payload.
    pub item: BatchItem,
    /// The verdict `verify_prehashed` must produce — known at
    /// generation time because the generator made the item.
    pub expect_ok: bool,
    /// How the item was generated.
    pub kind: RequestKind,
}

/// One queued verification response.
#[derive(Clone, Copy, Debug)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    /// The batch verifier's verdict.
    pub ok: bool,
    /// The generator's expected verdict.
    pub expect_ok: bool,
    /// When the request arrived, virtual cycles.
    pub arrival_cycles: u64,
    /// When its batch finished verifying, virtual cycles
    /// (`done - arrival` is the request's latency).
    pub done_cycles: u64,
}

/// One planned verification batch: consecutive requests of one key
/// window, verified together under that window's key.
#[derive(Debug)]
pub struct BatchPlan {
    /// Global batch index (assignment: shard = `index % shards`).
    pub index: usize,
    /// The window keypair the batch verifies under.
    pub keys: Keypair,
    /// The batch's requests, in arrival order.
    pub requests: Vec<Request>,
}

/// One shard's slice of the global batch sequence.
#[derive(Debug)]
pub struct ShardPlan {
    /// The shard index.
    pub shard: usize,
    /// The shard's batches, in global-index order.
    pub batches: Vec<BatchPlan>,
}

impl ShardPlan {
    /// Requests across all of the shard's batches.
    pub fn requests(&self) -> usize {
        self.batches.iter().map(|b| b.requests.len()).sum()
    }
}

/// splitmix64 — the repository's stock tiny deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mean inter-arrival gap in virtual cycles. `arrival_rate` is offered
/// load in units of single-verify service time — `R = 0.25` means one
/// request every four unbatched verifications' worth of cycles, so the
/// fleet is un-congested at the defaults and latency stays a pure
/// function of the global plan (see `DESIGN.md` §14).
pub fn mean_arrival_gap(cfg: &ServeConfig) -> u64 {
    let rate = if cfg.arrival_rate.is_finite() && cfg.arrival_rate > 0.0 {
        cfg.arrival_rate
    } else {
        1.0
    };
    let gap = (cfg.cycles_per_verify.max(1) as f64 / rate).round();
    (gap as u64).clamp(1, 1 << 56)
}

/// Seeded arrival timestamps: cumulative inter-arrival gaps drawn
/// uniformly from `[mean/2 + 1, mean/2 + mean]` (integer arithmetic,
/// own RNG stream, so the arrival process never perturbs payload
/// generation). The `mean/2` floor bounds burstiness: at the default
/// 0.25 rate every gap is at least two verifications' worth of cycles,
/// which makes the no-server-queue regime (and hence shard-count
/// invariance of every latency) a *guarantee*, not a coin flip — a
/// floorless distribution occasionally packs arrivals tighter than
/// the service time and a 2-shard fleet queues where a 4-shard one
/// does not.
fn plan_arrivals(cfg: &ServeConfig) -> Vec<u64> {
    let mean = mean_arrival_gap(cfg);
    let mut rng = cfg.seed ^ 0x6172_7269_7661_6c21; // "arrival!"
    let mut t = 0u64;
    (0..cfg.requests)
        .map(|_| {
            t += mean / 2 + 1 + splitmix64(&mut rng) % mean;
            t
        })
        .collect()
}

/// The window keypair: one key per [`KEY_WINDOW`] consecutive ids.
fn window_keys(curve: &Curve, seed: u64, window: usize) -> Keypair {
    let key_seed = [
        b"ule-serve window key".as_slice(),
        &seed.to_be_bytes(),
        &(window as u64).to_be_bytes(),
    ]
    .concat();
    Keypair::derive(curve, &key_seed)
}

/// Plans the full run: window keys, stratified kinds, seeded arrival
/// timestamps, and the global batch sequence dealt round-robin across
/// shards (`shard = batch_index % shards`).
pub fn plan_shards(curve: &Curve, cfg: &ServeConfig) -> Vec<ShardPlan> {
    let shards = cfg.shards.max(1);
    let batch_size = cfg.batch_size.clamp(1, KEY_WINDOW);
    let mut plans: Vec<ShardPlan> = (0..shards)
        .map(|shard| ShardPlan {
            shard,
            batches: Vec::new(),
        })
        .collect();

    let mut rng = cfg.seed ^ 0x7365_7276_655f_6d69; // "serve_mi"
    let kinds = plan_kinds(cfg.requests, &mut rng);
    let arrivals = plan_arrivals(cfg);

    let mut id = 0u64;
    let mut global = 0usize;
    let mut window = 0usize;
    while (id as usize) < cfg.requests {
        let remaining_in_window = (cfg.requests - id as usize).min(KEY_WINDOW);
        let keys = window_keys(curve, cfg.seed, window);
        let mut off = 0usize;
        while off < remaining_in_window {
            let len = (remaining_in_window - off).min(batch_size);
            let mut requests = Vec::with_capacity(len);
            for _ in 0..len {
                let mut request = generate(curve, &keys, id, kinds[id as usize], &mut rng);
                request.arrival_cycles = arrivals[id as usize];
                requests.push(request);
                id += 1;
            }
            plans[global % shards].batches.push(BatchPlan {
                index: global,
                keys: keys.clone(),
                requests,
            });
            global += 1;
            off += len;
        }
        window += 1;
    }
    plans
}

/// Stratified kind plan: every 64-request window carries *exactly* one
/// tampered, one range-reject and one hint-less item at seeded
/// positions (windows shorter than 4 stay all-valid). Rare enough that
/// most full batches stay on the RLC fast path, but guaranteed — even
/// a small seeded run exercises the reject, fallback and hint-less
/// paths.
fn plan_kinds(requests: usize, rng: &mut u64) -> Vec<RequestKind> {
    let mut kinds = vec![RequestKind::Valid; requests];
    let mut w = 0;
    while w < requests {
        let len = (requests - w).min(KEY_WINDOW);
        if len >= 4 {
            let specials = [
                RequestKind::TamperedSig,
                RequestKind::RangeReject,
                RequestKind::HintlessValid,
            ];
            let mut picked: Vec<usize> = Vec::with_capacity(specials.len());
            for kind in specials {
                loop {
                    let off = (splitmix64(rng) % len as u64) as usize;
                    if !picked.contains(&off) {
                        picked.push(off);
                        kinds[w + off] = kind;
                        break;
                    }
                }
            }
        }
        w += len;
    }
    kinds
}

fn generate(curve: &Curve, keys: &Keypair, id: u64, kind: RequestKind, rng: &mut u64) -> Request {
    let n = curve.n();
    let e = ecdsa::hash_to_scalar(curve, format!("serve request {id}").as_bytes());
    // Sign with a deterministic nonce, keeping the signer's nonce
    // point as the batch hint.
    let (sig, hint) = {
        let mut attempt = 0u64;
        loop {
            let nonce_seed = [
                b"ule-serve nonce".as_slice(),
                &id.to_be_bytes(),
                &attempt.to_be_bytes(),
            ]
            .concat();
            let k = ecdsa::derive_scalar(curve, &nonce_seed, b"nonce");
            if let Some(pair) = ecdsa::sign_with_nonce_recoverable(curve, keys.private(), &e, &k) {
                break pair;
            }
            attempt += 1;
        }
    };

    let (item, expect_ok) = match kind {
        RequestKind::TamperedSig => {
            let bit = splitmix64(rng) % sig.s.bit_len().max(1) as u64;
            let flipped = flip_bit(&sig.s, bit as usize);
            let sig = ecdsa::Signature {
                r: sig.r,
                s: flipped,
            };
            // Flipping a bit can push s out of range; either way the
            // verdict is reject: for a fixed (e, r, d) the only
            // accepted values are s and its negation n - s, and a
            // single bit flip reaches neither (the tests pin this
            // against `verify_prehashed` for the seeded corpus).
            let item = BatchItem {
                e,
                sig,
                hint: Some(hint),
            };
            (item, false)
        }
        RequestKind::RangeReject => {
            let bad = match splitmix64(rng) % 3 {
                0 => Mp::zero(),
                1 => n.clone(),
                _ => n.add(&Mp::one()),
            };
            let sig = if splitmix64(rng).is_multiple_of(2) {
                ecdsa::Signature { r: bad, s: sig.s }
            } else {
                ecdsa::Signature { r: sig.r, s: bad }
            };
            let item = BatchItem {
                e,
                sig,
                hint: Some(hint),
            };
            (item, false)
        }
        RequestKind::HintlessValid => {
            let item = BatchItem { e, sig, hint: None };
            (item, true)
        }
        RequestKind::Valid => {
            let item = BatchItem {
                e,
                sig,
                hint: Some(hint),
            };
            (item, true)
        }
    };
    Request {
        id,
        arrival_cycles: 0,
        item,
        expect_ok,
        kind,
    }
}

fn flip_bit(v: &Mp, bit: usize) -> Mp {
    let limb = bit / 32;
    let mut limbs = v.to_limbs((limb + 1).max(v.bit_len().div_ceil(32)));
    limbs[limb] ^= 1 << (bit % 32);
    Mp::from_limbs(&limbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_curves::params::CurveId;

    fn cfg(requests: usize, batch: usize, shards: usize) -> ServeConfig {
        ServeConfig {
            requests,
            batch_size: batch,
            shards,
            seed: 42,
            ..ServeConfig::new(CurveId::P192)
        }
    }

    #[test]
    fn plans_are_deterministic_and_expectations_match_single_verify() {
        let curve = CurveId::P192.curve();
        let cfg = cfg(96, 8, 3);
        let a = plan_shards(&curve, &cfg);
        let b = plan_shards(&curve, &cfg);
        assert_eq!(a.len(), 3);
        let mut kinds = std::collections::HashMap::new();
        let mut seen = 0usize;
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.batches.len(), pb.batches.len());
            for (ba, bb) in pa.batches.iter().zip(&pb.batches) {
                assert_eq!(ba.index % cfg.shards, pa.shard, "round-robin assignment");
                for (ra, rb) in ba.requests.iter().zip(&bb.requests) {
                    assert_eq!(ra.id, rb.id);
                    assert_eq!(ra.item.sig, rb.item.sig);
                    assert_eq!(ra.kind, rb.kind);
                    assert_eq!(ra.arrival_cycles, rb.arrival_cycles);
                    assert!(ra.arrival_cycles > 0, "arrivals start after cycle 0");
                    *kinds.entry(ra.kind).or_insert(0usize) += 1;
                    seen += 1;
                    let single = ecdsa::verify_prehashed(
                        &curve,
                        &ba.keys.public(),
                        &ra.item.e,
                        &ra.item.sig,
                    );
                    assert_eq!(
                        single, ra.expect_ok,
                        "request {} ({:?}): generator expectation wrong",
                        ra.id, ra.kind
                    );
                }
            }
        }
        assert_eq!(seen, 96);
        assert!(kinds.contains_key(&RequestKind::Valid));
        assert!(
            kinds.len() >= 3,
            "96 draws should hit several kinds: {kinds:?}"
        );
    }

    #[test]
    fn traffic_is_shard_and_batch_size_invariant() {
        let curve = CurveId::P192.curve();
        let flatten = |plans: &[ShardPlan]| -> Vec<(u64, u64, bool)> {
            let mut all: Vec<(usize, u64, u64, bool)> = plans
                .iter()
                .flat_map(|p| p.batches.iter())
                .flat_map(|b| {
                    b.requests
                        .iter()
                        .map(move |r| (b.index, r.id, r.arrival_cycles, r.expect_ok))
                })
                .collect();
            all.sort_unstable();
            all.into_iter().map(|(_, id, t, ok)| (id, t, ok)).collect()
        };
        // Shard count re-partitions the very same batches: ids,
        // arrivals and expectations are identical.
        let two = plan_shards(&curve, &cfg(80, 8, 2));
        let five = plan_shards(&curve, &cfg(80, 8, 5));
        assert_eq!(flatten(&two), flatten(&five));
        let batches = |plans: &[ShardPlan]| -> Vec<(usize, Vec<u64>)> {
            let mut b: Vec<(usize, Vec<u64>)> = plans
                .iter()
                .flat_map(|p| p.batches.iter())
                .map(|b| (b.index, b.requests.iter().map(|r| r.id).collect()))
                .collect();
            b.sort();
            b
        };
        assert_eq!(batches(&two), batches(&five), "identical batch cuts");
        // Batch size changes the cuts but not the traffic.
        let wide = plan_shards(&curve, &cfg(80, 64, 2));
        assert_eq!(flatten(&two), flatten(&wide));
    }

    #[test]
    fn batches_never_straddle_a_key_window() {
        let curve = CurveId::K163.curve();
        // 7 does not divide 64: ragged batches at every window edge.
        let plans = plan_shards(&curve, &cfg(150, 7, 3));
        let mut total = 0usize;
        for plan in &plans {
            for batch in &plan.batches {
                let first = batch.requests.first().unwrap().id as usize;
                let last = batch.requests.last().unwrap().id as usize;
                assert_eq!(
                    first / KEY_WINDOW,
                    last / KEY_WINDOW,
                    "batch {} spans windows",
                    batch.index
                );
                assert!(batch.requests.len() <= 7);
                total += batch.requests.len();
            }
        }
        assert_eq!(total, 150);
    }

    #[test]
    fn arrival_rate_scales_gaps_without_touching_payloads() {
        let curve = CurveId::P192.curve();
        let slow = cfg(32, 8, 2);
        let fast = ServeConfig {
            arrival_rate: slow.arrival_rate * 16.0,
            ..slow
        };
        let a = plan_shards(&curve, &slow);
        let b = plan_shards(&curve, &fast);
        assert!(mean_arrival_gap(&slow) >= 15 * mean_arrival_gap(&fast));
        let last = |plans: &[ShardPlan]| {
            plans
                .iter()
                .flat_map(|p| p.batches.iter())
                .flat_map(|b| b.requests.iter())
                .map(|r| r.arrival_cycles)
                .max()
                .unwrap()
        };
        assert!(last(&a) > 8 * last(&b), "higher rate compresses arrivals");
        for (pa, pb) in a.iter().zip(&b) {
            for (ba, bb) in pa.batches.iter().zip(&pb.batches) {
                for (ra, rb) in ba.requests.iter().zip(&bb.requests) {
                    assert_eq!(ra.item.sig, rb.item.sig, "payloads must not change");
                    assert_eq!(ra.expect_ok, rb.expect_ok);
                }
            }
        }
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let v = Mp::from_u64(0b1010);
        assert_eq!(flip_bit(&v, 0).low_u64(), 0b1011);
        assert_eq!(flip_bit(&v, 3).low_u64(), 0b0010);
        assert!(flip_bit(&v, 70).bit(70));
    }
}
