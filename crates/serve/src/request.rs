//! Seeded arrival generation: the service front-end's request queues.
//!
//! Traffic is planned, not streamed: `plan_shards` derives every
//! request of the run from the seed up front, so the expected verdict
//! of each item is known at generation time and the engine can check
//! the batch verifier against it request-by-request. The mix mirrors
//! what a verification front-end actually sees — mostly valid
//! signatures with nonce-point hints, a trickle of tampered and
//! out-of-range ones, and some hint-less clients — with the invalid
//! fraction low enough that most full batches stay on the RLC fast
//! path.

use crate::ServeConfig;
use ule_curves::ecdsa::{self, BatchItem, Keypair};
use ule_curves::params::Curve;
use ule_mpmath::mp::Mp;

/// What the generator did to a request before enqueueing it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RequestKind {
    /// A well-formed signature with the signer's `R = k·G` hint.
    Valid,
    /// A well-formed signature whose client sent no hint (forces the
    /// whole batch onto the exact fallback path).
    HintlessValid,
    /// A valid signature with one bit of `s` flipped.
    TamperedSig,
    /// `r` or `s` outside `[1, n)` — the zero-cost reject path.
    RangeReject,
}

/// One queued verification request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Monotone id, unique across shards.
    pub id: u64,
    /// The batch-verification payload.
    pub item: BatchItem,
    /// The verdict `verify_prehashed` must produce — known at
    /// generation time because the generator made the item.
    pub expect_ok: bool,
    /// How the item was generated.
    pub kind: RequestKind,
}

/// One queued verification response.
#[derive(Clone, Copy, Debug)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    /// The batch verifier's verdict.
    pub ok: bool,
    /// The generator's expected verdict.
    pub expect_ok: bool,
}

/// One shard's keypair and request queue.
#[derive(Debug)]
pub struct ShardPlan {
    /// The shard index.
    pub shard: usize,
    /// The shard's signing key (one key per shard: a batch verifies
    /// under a single public key).
    pub keys: Keypair,
    /// The shard's queue, in arrival order.
    pub requests: Vec<Request>,
}

/// splitmix64 — the repository's stock tiny deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Plans the full run: derives per-shard keypairs and queues from the
/// seed, distributing `cfg.requests` round-robin across shards.
pub fn plan_shards(curve: &Curve, cfg: &ServeConfig) -> Vec<ShardPlan> {
    let shards = cfg.shards.max(1);
    let mut plans: Vec<ShardPlan> = (0..shards)
        .map(|shard| {
            let key_seed = [
                b"ule-serve shard key".as_slice(),
                &cfg.seed.to_be_bytes(),
                &(shard as u64).to_be_bytes(),
            ]
            .concat();
            ShardPlan {
                shard,
                keys: Keypair::derive(curve, &key_seed),
                requests: Vec::new(),
            }
        })
        .collect();

    let mut rng = cfg.seed ^ 0x7365_7276_655f_6d69; // "serve_mi"
    let kinds = plan_kinds(cfg.requests, &mut rng);
    for id in 0..cfg.requests as u64 {
        let shard = (id as usize) % shards;
        let request = generate(curve, &plans[shard].keys, id, kinds[id as usize], &mut rng);
        plans[shard].requests.push(request);
    }
    plans
}

/// Stratified kind plan: every 64-request window carries *exactly* one
/// tampered, one range-reject and one hint-less item at seeded
/// positions (windows shorter than 4 stay all-valid). Rare enough that
/// most full batches stay on the RLC fast path, but guaranteed — even
/// a small seeded run exercises the reject, fallback and hint-less
/// paths.
fn plan_kinds(requests: usize, rng: &mut u64) -> Vec<RequestKind> {
    let mut kinds = vec![RequestKind::Valid; requests];
    let mut w = 0;
    while w < requests {
        let len = (requests - w).min(64);
        if len >= 4 {
            let specials = [
                RequestKind::TamperedSig,
                RequestKind::RangeReject,
                RequestKind::HintlessValid,
            ];
            let mut picked: Vec<usize> = Vec::with_capacity(specials.len());
            for kind in specials {
                loop {
                    let off = (splitmix64(rng) % len as u64) as usize;
                    if !picked.contains(&off) {
                        picked.push(off);
                        kinds[w + off] = kind;
                        break;
                    }
                }
            }
        }
        w += len;
    }
    kinds
}

fn generate(curve: &Curve, keys: &Keypair, id: u64, kind: RequestKind, rng: &mut u64) -> Request {
    let n = curve.n();
    let e = ecdsa::hash_to_scalar(curve, format!("serve request {id}").as_bytes());
    // Sign with a deterministic nonce, keeping the signer's nonce
    // point as the batch hint.
    let (sig, hint) = {
        let mut attempt = 0u64;
        loop {
            let nonce_seed = [
                b"ule-serve nonce".as_slice(),
                &id.to_be_bytes(),
                &attempt.to_be_bytes(),
            ]
            .concat();
            let k = ecdsa::derive_scalar(curve, &nonce_seed, b"nonce");
            if let Some(pair) = ecdsa::sign_with_nonce_recoverable(curve, keys.private(), &e, &k) {
                break pair;
            }
            attempt += 1;
        }
    };

    let (item, expect_ok) = match kind {
        RequestKind::TamperedSig => {
            let bit = splitmix64(rng) % sig.s.bit_len().max(1) as u64;
            let flipped = flip_bit(&sig.s, bit as usize);
            let sig = ecdsa::Signature {
                r: sig.r,
                s: flipped,
            };
            // Flipping a bit can push s out of range; either way the
            // verdict is reject: for a fixed (e, r, d) the only
            // accepted values are s and its negation n - s, and a
            // single bit flip reaches neither (the tests pin this
            // against `verify_prehashed` for the seeded corpus).
            let item = BatchItem {
                e,
                sig,
                hint: Some(hint),
            };
            (item, false)
        }
        RequestKind::RangeReject => {
            let bad = match splitmix64(rng) % 3 {
                0 => Mp::zero(),
                1 => n.clone(),
                _ => n.add(&Mp::one()),
            };
            let sig = if splitmix64(rng).is_multiple_of(2) {
                ecdsa::Signature { r: bad, s: sig.s }
            } else {
                ecdsa::Signature { r: sig.r, s: bad }
            };
            let item = BatchItem {
                e,
                sig,
                hint: Some(hint),
            };
            (item, false)
        }
        RequestKind::HintlessValid => {
            let item = BatchItem { e, sig, hint: None };
            (item, true)
        }
        RequestKind::Valid => {
            let item = BatchItem {
                e,
                sig,
                hint: Some(hint),
            };
            (item, true)
        }
    };
    Request {
        id,
        item,
        expect_ok,
        kind,
    }
}

fn flip_bit(v: &Mp, bit: usize) -> Mp {
    let limb = bit / 32;
    let mut limbs = v.to_limbs((limb + 1).max(v.bit_len().div_ceil(32)));
    limbs[limb] ^= 1 << (bit % 32);
    Mp::from_limbs(&limbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_curves::params::CurveId;

    #[test]
    fn plans_are_deterministic_and_expectations_match_single_verify() {
        let curve = CurveId::P192.curve();
        let cfg = ServeConfig {
            curve: CurveId::P192,
            requests: 96,
            batch_size: 8,
            shards: 3,
            seed: 42,
        };
        let a = plan_shards(&curve, &cfg);
        let b = plan_shards(&curve, &cfg);
        assert_eq!(a.len(), 3);
        let mut kinds = std::collections::HashMap::new();
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.requests.len(), 32);
            for (ra, rb) in pa.requests.iter().zip(&pb.requests) {
                assert_eq!(ra.id, rb.id);
                assert_eq!(ra.item.sig, rb.item.sig);
                assert_eq!(ra.kind, rb.kind);
                *kinds.entry(ra.kind).or_insert(0usize) += 1;
                let single =
                    ecdsa::verify_prehashed(&curve, &pa.keys.public(), &ra.item.e, &ra.item.sig);
                assert_eq!(
                    single, ra.expect_ok,
                    "request {} ({:?}): generator expectation wrong",
                    ra.id, ra.kind
                );
            }
        }
        assert!(kinds.contains_key(&RequestKind::Valid));
        assert!(
            kinds.len() >= 3,
            "96 draws should hit several kinds: {kinds:?}"
        );
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let v = Mp::from_u64(0b1010);
        assert_eq!(flip_bit(&v, 0).low_u64(), 0b1011);
        assert_eq!(flip_bit(&v, 3).low_u64(), 0b0010);
        assert!(flip_bit(&v, 70).bit(70));
    }
}
