//! The virtual clock: deterministic request-lifecycle timing.
//!
//! Nothing here reads a wall clock. Every request's lifecycle —
//! arrival → batch-assembly wait → (possibly) server-queue wait →
//! verify-complete — is replayed on a cycle-granular virtual timeline
//! whose only inputs are the seeded plan and a [`CostModel`] anchored
//! to the `ule-core` simulator:
//!
//! * a batch is *ready* when its last request has arrived
//!   (batch-assembly wait);
//! * its shard starts it at `max(shard_clock, ready)` (server-queue
//!   wait — zero while the shard keeps up);
//! * service time scales the simulator's single-verification cycle
//!   cost by the batch's share of weighted host group operations:
//!   `service = cycles_per_verify · W_batch / W_unit` (u128 integer
//!   arithmetic, so identical on every platform).
//!
//! Because the batch sequence is shard-count-invariant (see
//! [`crate::request`]), per-request latencies are a pure function of
//! `(curve, seed, requests, shards, batch_size, arrival_rate)`; when
//! no batch ever waits on a busy shard they are independent of the
//! shard count entirely — the property the CI `sla` job pins.

use ule_curves::ecdsa::{self, BatchItem, Keypair};
use ule_curves::params::Curve;
use ule_obs::hist::LatencyHist;

use crate::engine::ShardOutcome;

/// Scales weighted host group operations into virtual cycles.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Simulated cycles of one unbatched verification (from the
    /// `ule-core` simulator for the anchor arch; library default when
    /// no simulator is attached).
    pub cycles_per_verify: u64,
    /// Weighted host ops of one nominal single-item verification on
    /// the same curve — the denominator that makes the scaling
    /// dimensionless.
    pub unit_weighted_ops: u64,
}

impl CostModel {
    /// Builds the model for a curve: runs one nominal hinted
    /// verification through the batch verifier (a single-item batch
    /// takes the exact path, no RLC) and takes its weighted op census
    /// as the unit. Pure function of the curve.
    pub fn for_curve(curve: &Curve, cycles_per_verify: u64) -> CostModel {
        let keys = Keypair::derive(curve, b"ule-serve unit verify");
        let e = ecdsa::hash_to_scalar(curve, b"ule-serve unit message");
        let (sig, hint) = {
            let mut attempt = 0u64;
            loop {
                let nonce_seed =
                    [b"ule-serve unit nonce".as_slice(), &attempt.to_be_bytes()].concat();
                let k = ecdsa::derive_scalar(curve, &nonce_seed, b"nonce");
                if let Some(pair) =
                    ecdsa::sign_with_nonce_recoverable(curve, keys.private(), &e, &k)
                {
                    break pair;
                }
                attempt += 1;
            }
        };
        let item = BatchItem {
            e,
            sig,
            hint: Some(hint),
        };
        let verdict = ecdsa::verify_batch_prehashed(curve, &keys.public(), &[item], 0);
        CostModel {
            cycles_per_verify: cycles_per_verify.max(1),
            unit_weighted_ops: crate::metrics::weighted_ops(&verdict.ops).max(1),
        }
    }

    /// Virtual service cycles of a batch with the given weighted op
    /// census (at least 1 cycle, u128 intermediate — never overflows,
    /// never rounds differently across platforms).
    pub fn service_cycles(&self, batch_weighted_ops: u64) -> u64 {
        let scaled = (self.cycles_per_verify as u128 * batch_weighted_ops as u128)
            / self.unit_weighted_ops as u128;
        u64::try_from(scaled).unwrap_or(u64::MAX).max(1)
    }
}

/// One executed batch on the virtual timeline (the Perfetto slice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchTrace {
    /// Global batch index.
    pub index: usize,
    /// Shard that executed it.
    pub shard: usize,
    /// Requests in the batch.
    pub items: usize,
    /// When the last request of the batch had arrived.
    pub ready_cycles: u64,
    /// When the shard began verifying (`start - ready` is the
    /// server-queue wait; zero while the shard keeps up).
    pub start_cycles: u64,
    /// When the verdicts were produced.
    pub end_cycles: u64,
    /// Virtual verification time (`end - start`).
    pub service_cycles: u64,
}

/// Fleet-level virtual-time telemetry aggregated over shard outcomes.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// Merged latency histogram across all shards.
    pub fleet_hist: LatencyHist,
    /// Per-shard latency histograms, shard-index order (merging these
    /// reproduces `fleet_hist` exactly — pinned by `repro check --sla`).
    pub shard_hists: Vec<LatencyHist>,
    /// Every executed batch, global-index order.
    pub traces: Vec<BatchTrace>,
    /// Peak number of requests arrived but not yet answered.
    pub queue_depth_max: u64,
    /// Time-weighted mean queue depth over `[0, horizon_cycles]`.
    pub queue_depth_mean: f64,
    /// Per-shard busy fraction of the horizon, shard-index order.
    pub utilization: Vec<f64>,
    /// End of the run on the virtual clock (last batch completion).
    pub horizon_cycles: u64,
}

/// Aggregates shard outcomes into fleet telemetry: merges histograms,
/// splices batch traces back into global order, and replays the
/// arrival/completion event stream for queue-depth telemetry.
pub fn aggregate(shards: &[ShardOutcome]) -> Telemetry {
    let mut fleet_hist = LatencyHist::new();
    let mut shard_hists = Vec::with_capacity(shards.len());
    let mut traces: Vec<BatchTrace> = Vec::new();
    for s in shards {
        fleet_hist.merge(&s.hist);
        shard_hists.push(s.hist.clone());
        traces.extend_from_slice(&s.traces);
    }
    traces.sort_unstable_by_key(|t| t.index);
    let horizon_cycles = traces.iter().map(|t| t.end_cycles).max().unwrap_or(0);

    // Queue depth: +1 at every arrival, -1 at every completion, with
    // completions applied first on ties (a slot frees before the
    // next arrival lands on the same cycle).
    let mut events: Vec<(u64, i64)> = Vec::new();
    for s in shards {
        for r in &s.responses {
            events.push((r.arrival_cycles, 1));
            events.push((r.done_cycles, -1));
        }
    }
    events.sort_unstable();
    let mut depth = 0i64;
    let mut max_depth = 0i64;
    let mut weighted: u128 = 0;
    let mut prev_t = 0u64;
    for (t, delta) in events {
        weighted += depth.max(0) as u128 * (t - prev_t) as u128;
        prev_t = t;
        depth += delta;
        max_depth = max_depth.max(depth);
    }
    let queue_depth_mean = if horizon_cycles > 0 {
        weighted as f64 / horizon_cycles as f64
    } else {
        0.0
    };

    let utilization = shards
        .iter()
        .map(|s| {
            if horizon_cycles > 0 {
                s.busy_cycles as f64 / horizon_cycles as f64
            } else {
                0.0
            }
        })
        .collect();

    Telemetry {
        fleet_hist,
        shard_hists,
        traces,
        queue_depth_max: max_depth.max(0) as u64,
        queue_depth_mean,
        utilization,
        horizon_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_curves::params::CurveId;

    #[test]
    fn cost_model_is_deterministic_and_scales_linearly() {
        let curve = CurveId::P192.curve();
        let a = CostModel::for_curve(&curve, 1_000_000);
        let b = CostModel::for_curve(&curve, 1_000_000);
        assert_eq!(a.unit_weighted_ops, b.unit_weighted_ops);
        assert!(a.unit_weighted_ops > 0);
        // One unit of weighted ops costs exactly one verification.
        assert_eq!(a.service_cycles(a.unit_weighted_ops), 1_000_000);
        assert_eq!(a.service_cycles(a.unit_weighted_ops * 3), 3_000_000);
        assert_eq!(a.service_cycles(0), 1, "service is never instantaneous");
        // The unit census is curve-specific, not a global constant.
        let k = CostModel::for_curve(&CurveId::K163.curve(), 1_000_000);
        assert_ne!(a.unit_weighted_ops, k.unit_weighted_ops);
    }
}
