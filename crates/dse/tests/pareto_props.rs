//! Property tests for the Pareto dominance kernel: seeded-random point
//! clouds must always yield an antichain, the same frontier regardless
//! of insertion order, and a frontier that both comes from and covers
//! the evaluated set.

use ule_dse::{dominates, Objectives, ParetoFront};
use ule_testkit::Rng;

/// Random objectives drawn from a small grid so dominance relations
/// (including exact ties) are common, not vanishingly rare.
fn random_objectives(rng: &mut Rng) -> Objectives {
    Objectives {
        cycles: rng.below(40),
        energy_uj: rng.below(40) as f64 * 0.25,
        area_kge: rng.below(40) as f64 * 0.5,
    }
}

fn random_cloud(seed: u64, n: usize) -> Vec<Objectives> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| random_objectives(&mut rng)).collect()
}

/// No frontier point may dominate another (with the id tie-break, so
/// duplicate objectives cannot coexist on the frontier either).
#[test]
fn frontier_is_an_antichain() {
    for seed in 0..8u64 {
        let cloud = random_cloud(0x0A17_EC41 + seed, 400);
        let mut front = ParetoFront::new();
        for (id, obj) in cloud.iter().enumerate() {
            front.insert(id, *obj);
        }
        let pts = front.points();
        assert!(!pts.is_empty());
        for a in pts {
            for b in pts {
                if a.id != b.id {
                    assert!(
                        !dominates(&a.objectives, a.id, &b.objectives, b.id),
                        "seed {seed}: frontier point {} dominates frontier point {}",
                        a.id,
                        b.id
                    );
                }
            }
        }
    }
}

/// The frontier is a pure function of the (id, objectives) set: any
/// insertion order — including orders where dominated points arrive
/// first and get evicted later — produces the same points.
#[test]
fn insertion_order_does_not_matter() {
    let cloud = random_cloud(0x0D15_EA5E, 250);
    let mut reference = ParetoFront::new();
    for (id, obj) in cloud.iter().enumerate() {
        reference.insert(id, *obj);
    }

    for seed in 0..12u64 {
        let mut order: Vec<usize> = (0..cloud.len()).collect();
        let mut rng = Rng::new(0x0511_7F7E * (seed + 1));
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let mut front = ParetoFront::new();
        for &id in &order {
            front.insert(id, cloud[id]);
        }
        assert_eq!(
            front.points(),
            reference.points(),
            "shuffle seed {seed} changed the frontier"
        );
    }
}

/// Soundness and maximality: every frontier point is one of the
/// inserted points (id and objectives both), and every inserted point
/// that is NOT on the frontier is dominated by some frontier point.
#[test]
fn frontier_is_the_maximal_subset_of_the_evaluated_set() {
    for seed in 0..8u64 {
        let cloud = random_cloud(0xBEEF_0000 + seed, 300);
        let mut front = ParetoFront::new();
        for (id, obj) in cloud.iter().enumerate() {
            front.insert(id, *obj);
        }
        for p in front.points() {
            assert!(p.id < cloud.len(), "frontier id outside the evaluated set");
            assert_eq!(
                p.objectives, cloud[p.id],
                "frontier objectives drifted from what was inserted"
            );
        }
        for (id, obj) in cloud.iter().enumerate() {
            if front.contains(id) {
                continue;
            }
            assert!(
                front
                    .points()
                    .iter()
                    .any(|p| dominates(&p.objectives, p.id, obj, id)),
                "seed {seed}: excluded point {id} is not dominated by any frontier point"
            );
        }
    }
}

/// `insert` reports whether the point joined the frontier, and the
/// frontier never grows past the number of inserts.
#[test]
fn insert_return_value_tracks_membership() {
    let cloud = random_cloud(0xCAFE, 100);
    let mut front = ParetoFront::new();
    let mut inserted = 0usize;
    for (id, obj) in cloud.iter().enumerate() {
        if front.insert(id, *obj) {
            assert!(front.contains(id), "insert returned true but point absent");
        } else {
            assert!(!front.contains(id), "insert returned false but point kept");
        }
        inserted += 1;
        assert!(front.len() <= inserted);
    }
}
