//! End-to-end explorer tests against the real simulator: a pinned
//! golden frontier for the built-in Billie digit-width space (the
//! paper's Fig 7.14 axis), grid/greedy frontier agreement, and
//! byte-identical journal resume.

use std::path::PathBuf;

use ule_core::metrics::design_point_record;
use ule_core::{MultVariant, RunOptions, System, SystemConfig, Workload};
use ule_dse::spaces::builtin;
use ule_dse::{explore, Evaluator, Greedy, Grid, PointEval};

/// A serial evaluator running the real simulator — the test-side
/// stand-in for `ule-bench`'s `SweepEngine` bridge (which lives above
/// this crate in the dependency graph).
struct SimEval;

impl Evaluator for SimEval {
    fn evaluate(&self, jobs: &[(SystemConfig, Workload)]) -> Vec<PointEval> {
        jobs.iter()
            .map(|&(config, workload)| {
                let report = System::new(config).run_with(RunOptions::new(workload));
                PointEval {
                    record: design_point_record(&config, workload, &report),
                    cycles: report.cycles,
                    energy_uj: report.energy_uj(),
                }
            })
            .collect()
    }
}

/// Golden frontier for `billie-digit` (K-163 scalar mult, digits
/// 1..=16 × three multiplier front-ends). Pinned facts: the frontier
/// is exactly the Karatsuba column, digit 16 is dominated (ceil(163/16)
/// = ceil(163/15) iterations, strictly more area), and the cycle
/// counts are these. A change here is a simulator or energy/area model
/// change — regenerate deliberately.
#[test]
fn billie_digit_grid_frontier_matches_golden() {
    let space = builtin("billie-digit").expect("built-in space");
    let outcome = explore(&SimEval, &space, &mut Grid::new(), 0, None).expect("explore");
    assert_eq!(outcome.lattice_points, 48);
    assert_eq!(outcome.evaluated, 48);
    assert_eq!(outcome.pruned, 0);

    const GOLDEN_CYCLES: [u64; 15] = [
        22377, 23191, 24120, 25068, 26023, 27958, 29941, 31927, 34906, 38878, 43852, 51820, 66514,
        95350, 181895,
    ];
    assert_eq!(outcome.frontier.len(), GOLDEN_CYCLES.len());
    let mut last_energy = 0.0f64;
    for (rank, entry) in outcome.frontier.iter().enumerate() {
        assert_eq!(entry.rank, rank);
        // Rank r is digit 15-r: energy ascends as digits shrink the
        // datapath, cycles descend, area descends — a pure tradeoff.
        assert_eq!(entry.config.billie_digit, 15 - rank);
        assert_eq!(entry.config.mult_variant, MultVariant::Karatsuba);
        assert_eq!(entry.objectives.cycles, GOLDEN_CYCLES[rank]);
        assert!(
            entry.objectives.energy_uj > last_energy,
            "frontier ranks must ascend in energy"
        );
        last_energy = entry.objectives.energy_uj;
    }
}

/// The greedy pruner must evaluate strictly fewer points than the grid
/// yet recover the identical frontier — and do so for any seed, since
/// the seed only permutes the schedule.
#[test]
fn greedy_recovers_the_grid_frontier_with_fewer_evaluations() {
    let space = builtin("billie-digit").expect("built-in space");
    let grid = explore(&SimEval, &space, &mut Grid::new(), 0, None).expect("grid");
    for seed in [0u64, 0x1CE, u64::MAX] {
        let greedy = explore(&SimEval, &space, &mut Greedy::new(seed), seed, None).expect("greedy");
        assert!(
            greedy.evaluated < grid.evaluated,
            "seed {seed}: greedy evaluated {} of grid's {}",
            greedy.evaluated,
            grid.evaluated
        );
        assert_eq!(greedy.frontier.len(), grid.frontier.len(), "seed {seed}");
        for (g, e) in grid.frontier.iter().zip(&greedy.frontier) {
            assert_eq!(g.config, e.config, "seed {seed}");
            assert_eq!(g.objectives, e.objectives, "seed {seed}");
        }
    }
}

/// Journal lifecycle on the fast `smoke` space: a fresh run, a rerun
/// over its own complete journal (all points resumed, zero simulated),
/// and a rerun over a truncated journal (partial resume) must all
/// leave byte-identical files.
#[test]
fn journal_resume_is_byte_identical() {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "ule-dse-resume-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let space = builtin("smoke").expect("built-in space");

    let fresh = explore(&SimEval, &space, &mut Grid::new(), 7, Some(&path)).expect("fresh run");
    assert_eq!(fresh.resumed, 0);
    assert_eq!(fresh.simulated, fresh.evaluated);
    let bytes = std::fs::read(&path).expect("journal written");

    let full = explore(&SimEval, &space, &mut Grid::new(), 7, Some(&path)).expect("full resume");
    assert_eq!(
        full.resumed, fresh.evaluated,
        "complete journal resumes all"
    );
    assert_eq!(full.simulated, 0, "nothing re-simulated");
    assert_eq!(std::fs::read(&path).expect("journal"), bytes);

    // Keep only the first four design points — as if the first run was
    // killed mid-batch — and explore again into the same file.
    let text = String::from_utf8(bytes.clone()).expect("utf8");
    let partial: String = text
        .lines()
        .filter(|l| l.contains("\"record\":\"design_point\""))
        .take(4)
        .flat_map(|l| [l, "\n"])
        .collect();
    std::fs::write(&path, partial).expect("truncate");
    let resumed = explore(&SimEval, &space, &mut Grid::new(), 7, Some(&path)).expect("resume");
    assert_eq!(resumed.resumed, 4);
    assert_eq!(resumed.simulated, fresh.evaluated - 4);
    assert_eq!(std::fs::read(&path).expect("journal"), bytes);
    assert_eq!(resumed.frontier.len(), fresh.frontier.len());

    let stats =
        ule_dse::journal::validate_journal(&String::from_utf8(bytes).unwrap()).expect("valid");
    assert_eq!(stats.design_points, fresh.evaluated);
    assert_eq!(stats.frontier_points, fresh.frontier.len());
    assert_eq!(stats.summaries, 1);
    let _ = std::fs::remove_file(&path);
}
