//! Built-in exploration spaces and the JSON space-file format.
//!
//! Built-ins cover the paper's own sweep axes so the explorer can be
//! exercised without writing a space file:
//!
//! * `billie-digit` — the Fig 7.14 axis: K-163 scalar multiplication on
//!   Billie across every digit width, crossed with the §7.8 multiplier
//!   variants (which greedy prunes analytically);
//! * `monte-gating` — P-192 Monte front-end ablations (§7.7) crossed
//!   with the idle-gating strategies;
//! * `handshake` — the RFC 7748 ladder curves (X25519/X448) running the
//!   DTLS-style ECDHE + ECDSA handshake workload on every prime-field
//!   architecture, so ladder design points land on the same frontier as
//!   the ECDSA studies;
//! * `smoke` — a seconds-fast CI space over the baseline/ISA-ext cores.
//!
//! A space file is a JSON object with `name`, `workload`, and an
//! optional array per axis (see [`parse_space_file`]); omitted axes
//! keep the single-point default of [`SpaceSpec::new`].

use ule_core::space::{Axis, SpaceSpec};
use ule_core::{MultVariant, Workload};
use ule_curves::params::CurveId;
use ule_energy::report::Gating;
use ule_monte::MonteConfig;
use ule_obs::json::{self, Json};
use ule_pete::icache::CacheConfig;
use ule_swlib::builder::Arch;

/// Names of the built-in spaces, in presentation order.
pub const BUILTIN_NAMES: [&str; 4] = ["billie-digit", "monte-gating", "handshake", "smoke"];

/// Looks up a built-in space by name.
pub fn builtin(name: &str) -> Option<SpaceSpec> {
    // Prunable axes are declared best-candidate-first on purpose:
    // greedy pruning can only discard a point in favour of an
    // *earlier*-indexed sibling.
    match name {
        "billie-digit" => Some(
            SpaceSpec::new("billie-digit", Workload::ScalarMul)
                .axis(Axis::Curves(vec![CurveId::K163]))
                .axis(Axis::Archs(vec![Arch::Billie]))
                .axis(Axis::BillieDigits((1..=16).collect()))
                .axis(Axis::MultVariants(vec![
                    MultVariant::Karatsuba,
                    MultVariant::OperandScan,
                    MultVariant::Parallel,
                ])),
        ),
        "monte-gating" => Some(
            SpaceSpec::new("monte-gating", Workload::ScalarMul)
                .axis(Axis::Curves(vec![CurveId::P192]))
                .axis(Axis::Archs(vec![Arch::Monte]))
                .axis(Axis::Montes(vec![
                    MonteConfig::default(),
                    MonteConfig {
                        double_buffer: false,
                        ..MonteConfig::default()
                    },
                    MonteConfig {
                        forwarding: false,
                        ..MonteConfig::default()
                    },
                ]))
                .axis(Axis::Gatings(vec![
                    Gating::Clock,
                    Gating::None,
                    Gating::Power,
                ])),
        ),
        "handshake" => Some(
            SpaceSpec::new("handshake", Workload::Handshake)
                .axis(Axis::Curves(vec![CurveId::X25519, CurveId::X448]))
                .axis(Axis::Archs(vec![Arch::Baseline, Arch::IsaExt, Arch::Monte]))
                .axis(Axis::Gatings(vec![Gating::Clock, Gating::None])),
        ),
        "smoke" => Some(
            SpaceSpec::new("smoke", Workload::FieldMul)
                .axis(Axis::Curves(vec![CurveId::P192]))
                .axis(Axis::Archs(vec![Arch::Baseline, Arch::IsaExt]))
                .axis(Axis::Icaches(vec![None, Some(CacheConfig::best())]))
                .axis(Axis::MultVariants(vec![
                    MultVariant::Karatsuba,
                    MultVariant::OperandScan,
                    MultVariant::Parallel,
                ])),
        ),
        _ => None,
    }
}

pub(crate) fn parse_workload(s: &str) -> Result<Workload, String> {
    Ok(match s {
        "sign" => Workload::Sign,
        "verify" => Workload::Verify,
        "sign_verify" => Workload::SignVerify,
        "scalar_mul" => Workload::ScalarMul,
        "field_mul" => Workload::FieldMul,
        "xdh" => Workload::Xdh,
        "handshake" => Workload::Handshake,
        other => return Err(format!("unknown workload {other:?}")),
    })
}

pub(crate) fn parse_curve(s: &str) -> Result<CurveId, String> {
    CurveId::ALL
        .into_iter()
        .chain(CurveId::XCURVES)
        .find(|c| c.name() == s)
        .ok_or_else(|| format!("unknown curve {s:?}"))
}

pub(crate) fn parse_arch(s: &str) -> Result<Arch, String> {
    Ok(match s {
        "baseline" => Arch::Baseline,
        "isa_ext" => Arch::IsaExt,
        "monte" => Arch::Monte,
        "billie" => Arch::Billie,
        other => return Err(format!("unknown arch {other:?}")),
    })
}

pub(crate) fn parse_mult_variant(s: &str) -> Result<MultVariant, String> {
    Ok(match s {
        "karatsuba" => MultVariant::Karatsuba,
        "operand_scan" => MultVariant::OperandScan,
        "parallel" => MultVariant::Parallel,
        other => return Err(format!("unknown mult_variant {other:?}")),
    })
}

pub(crate) fn parse_gating(s: &str) -> Result<Gating, String> {
    Ok(match s {
        "none" => Gating::None,
        "clock" => Gating::Clock,
        "power" => Gating::Power,
        other => return Err(format!("unknown gating {other:?}")),
    })
}

fn str_items<'a>(doc: &'a Json, key: &str) -> Result<Option<Vec<&'a str>>, String> {
    let Some(v) = doc.get(key) else {
        return Ok(None);
    };
    let arr = v
        .as_array()
        .ok_or_else(|| format!("space file: {key:?} must be an array"))?;
    arr.iter()
        .map(|e| {
            e.as_str()
                .ok_or_else(|| format!("space file: {key:?} entries must be strings"))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn req_bool(obj: &Json, ctx: &str, key: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(|v| v.as_bool())
        .ok_or_else(|| format!("space file: {ctx} needs boolean {key:?}"))
}

fn req_u64(obj: &Json, ctx: &str, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("space file: {ctx} needs integer {key:?}"))
}

/// Parses a JSON space file. Supported keys: `name` (string, required),
/// `workload` (string, required), and per-axis arrays `curves`,
/// `archs`, `billie_digits`, `mult_variants`, `gatings`,
/// `billie_sram_rf`, `icaches` (entries `null` or
/// `{"size_bytes": …, "prefetch": …}` with optional `ideal`/
/// `miss_penalty`), and `montes` (entries `{"double_buffer": …,
/// "forwarding": …, "queue_depth": …}`). Omitted axes keep the
/// defaults of [`SpaceSpec::new`]. Identifiers use the same stable keys
/// as the metrics schema (`"billie"`, `"operand_scan"`, `"clock"`,
/// `"P-192"`, …).
pub fn parse_space_file(text: &str) -> Result<SpaceSpec, String> {
    let doc = json::parse(text).ok_or("space file: not valid JSON")?;
    let name = doc
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("space file: missing string \"name\"")?;
    let workload = parse_workload(
        doc.get("workload")
            .and_then(|v| v.as_str())
            .ok_or("space file: missing string \"workload\"")?,
    )?;
    let mut space = SpaceSpec::new(name, workload);

    if let Some(items) = str_items(&doc, "curves")? {
        let v = items
            .into_iter()
            .map(parse_curve)
            .collect::<Result<_, _>>()?;
        space = space.axis(Axis::Curves(v));
    }
    if let Some(items) = str_items(&doc, "archs")? {
        let v = items
            .into_iter()
            .map(parse_arch)
            .collect::<Result<_, _>>()?;
        space = space.axis(Axis::Archs(v));
    }
    if let Some(items) = str_items(&doc, "mult_variants")? {
        let v = items
            .into_iter()
            .map(parse_mult_variant)
            .collect::<Result<_, _>>()?;
        space = space.axis(Axis::MultVariants(v));
    }
    if let Some(items) = str_items(&doc, "gatings")? {
        let v = items
            .into_iter()
            .map(parse_gating)
            .collect::<Result<_, _>>()?;
        space = space.axis(Axis::Gatings(v));
    }
    if let Some(v) = doc.get("billie_digits") {
        let arr = v
            .as_array()
            .ok_or("space file: \"billie_digits\" must be an array")?;
        let digits = arr
            .iter()
            .map(|e| {
                e.as_u64().map(|d| d as usize).ok_or_else(|| {
                    "space file: \"billie_digits\" entries must be integers".to_owned()
                })
            })
            .collect::<Result<_, _>>()?;
        space = space.axis(Axis::BillieDigits(digits));
    }
    if let Some(v) = doc.get("billie_sram_rf") {
        let arr = v
            .as_array()
            .ok_or("space file: \"billie_sram_rf\" must be an array")?;
        let flags = arr
            .iter()
            .map(|e| {
                e.as_bool().ok_or_else(|| {
                    "space file: \"billie_sram_rf\" entries must be booleans".to_owned()
                })
            })
            .collect::<Result<_, _>>()?;
        space = space.axis(Axis::BillieSramRf(flags));
    }
    if let Some(v) = doc.get("icaches") {
        let arr = v
            .as_array()
            .ok_or("space file: \"icaches\" must be an array")?;
        let mut caches = Vec::new();
        for e in arr {
            if matches!(e, Json::Null) {
                caches.push(None);
                continue;
            }
            let size = req_u64(e, "icache entry", "size_bytes")? as u32;
            let mut c = CacheConfig::real(size, req_bool(e, "icache entry", "prefetch")?);
            if let Some(ideal) = e.get("ideal").and_then(|v| v.as_bool()) {
                c.ideal = ideal;
            }
            if let Some(p) = e.get("miss_penalty").and_then(|v| v.as_u64()) {
                c.miss_penalty = p as u32;
            }
            caches.push(Some(c));
        }
        space = space.axis(Axis::Icaches(caches));
    }
    if let Some(v) = doc.get("montes") {
        let arr = v
            .as_array()
            .ok_or("space file: \"montes\" must be an array")?;
        let mut montes = Vec::new();
        for e in arr {
            montes.push(MonteConfig {
                double_buffer: req_bool(e, "monte entry", "double_buffer")?,
                forwarding: req_bool(e, "monte entry", "forwarding")?,
                queue_depth: req_u64(e, "monte entry", "queue_depth")? as usize,
            });
        }
        space = space.axis(Axis::Montes(montes));
    }
    space.validate().map_err(|e| format!("space file: {e}"))?;
    Ok(space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_enumerate() {
        for name in BUILTIN_NAMES {
            let space = builtin(name).unwrap();
            let lattice = space.enumerate().unwrap();
            assert!(!lattice.is_empty(), "{name}");
        }
        assert!(builtin("no-such-space").is_none());
        // The Fig 7.14 axis: 16 digits × 3 variants.
        assert_eq!(
            builtin("billie-digit").unwrap().enumerate().unwrap().len(),
            48
        );
        // 3 front ends × 3 gatings.
        assert_eq!(
            builtin("monte-gating").unwrap().enumerate().unwrap().len(),
            9
        );
        // 2 X-curves × (baseline + isa-ext collapsing the gating knob,
        // Monte keeping both gatings).
        assert_eq!(builtin("handshake").unwrap().enumerate().unwrap().len(), 8);
        // 2 cores × 2 cache options × 3 variants.
        assert_eq!(builtin("smoke").unwrap().enumerate().unwrap().len(), 12);
    }

    #[test]
    fn handshake_space_points_are_valid_ladder_points() {
        let points = builtin("handshake").unwrap().enumerate().unwrap();
        assert!(points.iter().all(|c| c.curve.is_mont()));
        assert!(points
            .iter()
            .all(|c| ule_core::supports(c.curve, c.arch, Workload::Handshake)));
        // Both curves are represented.
        assert!(points.iter().any(|c| c.curve == CurveId::X25519));
        assert!(points.iter().any(|c| c.curve == CurveId::X448));
    }

    #[test]
    fn space_file_round_trips() {
        let text = r#"{
            "name": "custom",
            "workload": "scalar_mul",
            "curves": ["K-163", "K-233"],
            "archs": ["billie"],
            "billie_digits": [1, 4],
            "billie_sram_rf": [true, false],
            "mult_variants": ["karatsuba"],
            "gatings": ["clock", "none"]
        }"#;
        let space = parse_space_file(text).unwrap();
        assert_eq!(space.name, "custom");
        // 2 curves × 2 digits × 2 rf × 2 gatings.
        assert_eq!(space.enumerate().unwrap().len(), 16);
    }

    #[test]
    fn space_file_errors_are_descriptive() {
        assert!(parse_space_file("{}").unwrap_err().contains("name"));
        let bad = r#"{"name": "x", "workload": "jog"}"#;
        assert!(parse_space_file(bad).unwrap_err().contains("jog"));
        let bad = r#"{"name": "x", "workload": "sign", "curves": ["Q-1"]}"#;
        assert!(parse_space_file(bad).unwrap_err().contains("Q-1"));
        let bad = r#"{"name": "x", "workload": "sign",
                      "icaches": [{"size_bytes": 3000, "prefetch": false}]}"#;
        assert!(parse_space_file(bad).unwrap_err().contains("power of two"));
    }
}
