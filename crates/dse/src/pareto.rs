//! The Pareto dominance kernel and the incremental frontier.
//!
//! Three objectives, all minimized: energy per operation, cycles per
//! operation, and the silicon-area proxy. Dominance is the *strict
//! partial order* of [`dominates`]: weak componentwise `≤` plus a
//! tie-break on the point's lattice index for objective-identical
//! points. The tie-break matters: without it, two points with equal
//! objective vectors would both survive (or neither, depending on
//! kernel convention) and the frontier would depend on evaluation
//! order. With it, the frontier is the set of maximal elements of a
//! finite strict partial order — a pure function of the evaluated set,
//! independent of insertion order, thread schedule, or strategy.

/// One point's objective vector. All three are minimized.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objectives {
    /// Simulated cycles for the workload.
    pub cycles: u64,
    /// Total energy for the workload, µJ.
    pub energy_uj: f64,
    /// Silicon-area proxy, kGE (`ule_energy::area`).
    pub area_kge: f64,
}

impl Objectives {
    /// Weak componentwise dominance: no objective is worse.
    pub fn weakly_le(&self, other: &Objectives) -> bool {
        self.cycles <= other.cycles
            && self.energy_uj <= other.energy_uj
            && self.area_kge <= other.area_kge
    }
}

/// Strict dominance with lattice-index tie-breaking: `a` (at lattice
/// index `ida`) dominates `b` (at `idb`) iff `a` is weakly no worse on
/// every objective and either strictly better somewhere, or
/// objective-identical with the smaller index. Irreflexive and
/// transitive, so "not dominated by anything" is well-defined and
/// insertion-order independent.
pub fn dominates(a: &Objectives, ida: usize, b: &Objectives, idb: usize) -> bool {
    if !a.weakly_le(b) {
        return false;
    }
    a.cycles < b.cycles || a.energy_uj < b.energy_uj || a.area_kge < b.area_kge || ida < idb
}

/// A frontier point: lattice index plus its objectives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontPoint {
    /// The point's index in the canonical lattice enumeration.
    pub id: usize,
    /// Its objective vector.
    pub objectives: Objectives,
}

/// The incremental Pareto frontier: the maximal elements (under
/// [`dominates`]) of everything inserted so far, kept sorted by
/// lattice index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParetoFront {
    points: Vec<FrontPoint>,
}

impl ParetoFront {
    /// An empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers one evaluated point. Returns `true` if it joined the
    /// frontier (possibly evicting now-dominated members), `false` if
    /// an existing member dominates it.
    pub fn insert(&mut self, id: usize, objectives: Objectives) -> bool {
        if self
            .points
            .iter()
            .any(|p| dominates(&p.objectives, p.id, &objectives, id))
        {
            return false;
        }
        self.points
            .retain(|p| !dominates(&objectives, id, &p.objectives, p.id));
        let pos = self.points.partition_point(|p| p.id < id);
        self.points.insert(pos, FrontPoint { id, objectives });
        true
    }

    /// The frontier, sorted by lattice index.
    pub fn points(&self) -> &[FrontPoint] {
        &self.points
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether the point with this lattice index is on the frontier.
    pub fn contains(&self, id: usize) -> bool {
        self.points.binary_search_by_key(&id, |p| p.id).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(cycles: u64, energy_uj: f64, area_kge: f64) -> Objectives {
        Objectives {
            cycles,
            energy_uj,
            area_kge,
        }
    }

    #[test]
    fn dominance_is_irreflexive_and_directional() {
        let a = obj(100, 1.0, 50.0);
        assert!(!dominates(&a, 0, &a, 0));
        let worse = obj(100, 2.0, 50.0);
        assert!(dominates(&a, 1, &worse, 0));
        assert!(!dominates(&worse, 0, &a, 1));
        // Incomparable: each better somewhere.
        let tradeoff = obj(50, 2.0, 50.0);
        assert!(!dominates(&a, 0, &tradeoff, 1));
        assert!(!dominates(&tradeoff, 1, &a, 0));
    }

    #[test]
    fn equal_objectives_break_ties_by_lattice_index() {
        let a = obj(100, 1.0, 50.0);
        assert!(dominates(&a, 3, &a, 7));
        assert!(!dominates(&a, 7, &a, 3));
        let mut f = ParetoFront::new();
        assert!(f.insert(7, a));
        assert!(f.insert(3, a));
        assert_eq!(f.len(), 1);
        assert!(f.contains(3));
    }

    #[test]
    fn frontier_keeps_tradeoffs_and_evicts_dominated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(0, obj(100, 2.0, 50.0)));
        assert!(f.insert(1, obj(200, 1.0, 50.0))); // energy/cycles trade
        assert!(!f.insert(2, obj(300, 3.0, 60.0))); // dominated by both
        assert_eq!(f.len(), 2);
        // A sweep point evicts both.
        assert!(f.insert(4, obj(90, 0.9, 49.0)));
        assert_eq!(
            f.points(),
            &[FrontPoint {
                id: 4,
                objectives: obj(90, 0.9, 49.0)
            }]
        );
    }
}
