//! The resumable exploration journal (JSONL) and its validator.
//!
//! During a run the explorer *appends* one `design_point` record per
//! evaluated point — crash-safe progress. On successful completion it
//! *rewrites* the file in canonical form: every design point in lattice
//! order, then one `frontier` record per frontier point (rank order),
//! then one `dse_summary`. Because every record is a deterministic
//! function of (space, evaluated set), the completed journal is
//! byte-identical across re-runs, resumes, and thread counts.
//!
//! Resume parses `design_point` lines back by their *identity* (the
//! [`ule_core::metrics::config_identity`] string) and skips anything it
//! does not understand — a torn final line from a killed run, or record
//! kinds from a future schema — so a journal is never a worse starting
//! point than an empty file.

use crate::pareto::Objectives;
use std::collections::HashMap;
use ule_core::metrics::{arch_key, gating_key, mult_variant_key, workload_key, IDENTITY_KEYS};
use ule_core::{SystemConfig, Workload};
use ule_obs::json::{self, Json};
use ule_obs::record::Record;

/// Pushes the 15 identity keys of one design point onto a record, in
/// [`IDENTITY_KEYS`] order with the same value formatting as
/// `design_point_record`.
pub fn push_identity(r: &mut Record, config: &SystemConfig, workload: Workload) {
    let SystemConfig {
        curve,
        arch,
        icache,
        monte,
        billie_digit,
        mult_variant,
        gating,
        billie_sram_rf,
    } = *config;
    r.push("curve", curve.name());
    r.push("arch", arch_key(arch));
    r.push("workload", workload_key(workload));
    r.push("icache_present", icache.is_some());
    r.push(
        "icache_size_bytes",
        icache.map(|c| c.size_bytes as u64).unwrap_or(0),
    );
    r.push(
        "icache_prefetch",
        icache.map(|c| c.prefetch).unwrap_or(false),
    );
    r.push("icache_ideal", icache.map(|c| c.ideal).unwrap_or(false));
    r.push(
        "icache_miss_penalty",
        icache.map(|c| c.miss_penalty as u64).unwrap_or(0),
    );
    r.push("monte_double_buffer", monte.double_buffer);
    r.push("monte_forwarding", monte.forwarding);
    r.push("monte_queue_depth", monte.queue_depth as u64);
    r.push("billie_digit", billie_digit as u64);
    r.push("mult_variant", mult_variant_key(mult_variant));
    r.push("gating", gating_key(gating));
    r.push("billie_sram_rf", billie_sram_rf);
}

/// One `frontier` record: rank, the point's identity, and its three
/// objectives. Strategy-free on purpose — grid and greedy journals for
/// the same space must carry byte-identical frontier lines (the CI
/// agreement check is a literal `diff`).
pub fn frontier_record(
    space: &str,
    rank: usize,
    config: &SystemConfig,
    workload: Workload,
    objectives: &Objectives,
) -> Record {
    let mut r = Record::new("frontier");
    r.push("space", space);
    r.push("rank", rank as u64);
    push_identity(&mut r, config, workload);
    r.push("cycles", objectives.cycles);
    r.push("energy_uj", objectives.energy_uj);
    r.push("area_kge", objectives.area_kge);
    r
}

/// The closing `dse_summary` record. Deliberately excludes anything
/// resume-dependent (how many points came from a previous journal):
/// a resumed run and a fresh one finish with the same summary.
#[allow(clippy::too_many_arguments)]
pub fn dse_summary_record(
    space: &str,
    workload: Workload,
    strategy: &str,
    seed: u64,
    lattice_points: usize,
    pruned: usize,
    evaluated: usize,
    frontier_size: usize,
) -> Record {
    let mut r = Record::new("dse_summary");
    r.push("space", space);
    r.push("workload", workload_key(workload));
    r.push("strategy", strategy);
    r.push("seed", seed);
    r.push("lattice_points", lattice_points as u64);
    r.push("pruned", pruned as u64);
    r.push("evaluated", evaluated as u64);
    r.push("frontier_size", frontier_size as u64);
    r
}

/// Reconstructs the configuration and workload a record's identity
/// keys describe — the inverse of [`push_identity`], used by
/// `repro explore --report` to rebuild frontier configs from a journal
/// without re-running the exploration.
pub fn config_from_record(doc: &Json) -> Result<(SystemConfig, Workload), String> {
    let get_str = |key: &str| {
        doc.get(key)
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("record: missing string {key:?}"))
    };
    let get_u64 = |key: &str| {
        doc.get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("record: missing integer {key:?}"))
    };
    let get_bool = |key: &str| {
        doc.get(key)
            .and_then(|v| v.as_bool())
            .ok_or_else(|| format!("record: missing boolean {key:?}"))
    };
    let curve = crate::spaces::parse_curve(get_str("curve")?)?;
    let arch = crate::spaces::parse_arch(get_str("arch")?)?;
    let workload = crate::spaces::parse_workload(get_str("workload")?)?;
    let icache = if get_bool("icache_present")? {
        Some(ule_pete::icache::CacheConfig {
            size_bytes: get_u64("icache_size_bytes")? as u32,
            prefetch: get_bool("icache_prefetch")?,
            ideal: get_bool("icache_ideal")?,
            miss_penalty: get_u64("icache_miss_penalty")? as u32,
        })
    } else {
        None
    };
    let mut config = SystemConfig::new(curve, arch);
    config.icache = icache;
    config.monte = ule_monte::MonteConfig {
        double_buffer: get_bool("monte_double_buffer")?,
        forwarding: get_bool("monte_forwarding")?,
        queue_depth: get_u64("monte_queue_depth")? as usize,
    };
    config.billie_digit = get_u64("billie_digit")? as usize;
    config.mult_variant = crate::spaces::parse_mult_variant(get_str("mult_variant")?)?;
    config.gating = crate::spaces::parse_gating(get_str("gating")?)?;
    config.billie_sram_rf = get_bool("billie_sram_rf")?;
    Ok((config, workload))
}

/// One design point recovered from a journal.
#[derive(Clone, Debug, PartialEq)]
pub struct ResumedPoint {
    /// Simulated cycles.
    pub cycles: u64,
    /// Total energy, µJ (bit-exact: the JSON writer uses shortest-
    /// round-trip formatting).
    pub energy_uj: f64,
    /// The record's original JSONL line, re-emitted verbatim by the
    /// canonical rewrite so a resumed journal stays byte-identical to a
    /// fresh one.
    pub line: String,
}

fn identity_of(doc: &Json) -> Option<String> {
    let mut s = String::new();
    for key in IDENTITY_KEYS {
        let v = doc.get(key)?;
        match v {
            Json::Bool(b) => s.push_str(&format!("{key}={b}|")),
            Json::U64(n) => s.push_str(&format!("{key}={n}|")),
            Json::Str(t) => s.push_str(&format!("{key}={t}|")),
            _ => return None,
        }
    }
    Some(s)
}

/// Parses the `design_point` lines of a (possibly torn or partial)
/// journal, keyed by identity. Unknown record kinds, malformed lines,
/// and design points missing required fields are skipped — their count
/// comes back alongside the map. Later lines win on duplicate identity.
pub fn parse_design_points(text: &str) -> (HashMap<String, ResumedPoint>, usize) {
    let mut points = HashMap::new();
    let mut skipped = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = json::parse(line).and_then(|doc| {
            if doc.get("record")?.as_str()? != "design_point" {
                return None;
            }
            Some((
                identity_of(&doc)?,
                ResumedPoint {
                    cycles: doc.get("cycles")?.as_u64()?,
                    energy_uj: doc.get("energy_uj")?.as_f64()?,
                    line: line.to_owned(),
                },
            ))
        });
        match parsed {
            Some((identity, point)) => {
                points.insert(identity, point);
            }
            None => skipped += 1,
        }
    }
    (points, skipped)
}

/// What a validated journal contains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// `design_point` records.
    pub design_points: usize,
    /// `frontier` records.
    pub frontier_points: usize,
    /// `dse_summary` records.
    pub summaries: usize,
    /// Records of kinds this validator does not know (tolerated, per
    /// the skip-and-count forward-compatibility rule).
    pub unknown: usize,
}

fn require<'a>(doc: &'a Json, ctx: &str, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{ctx}: missing {key:?}"))
}

/// Structurally validates an exploration journal (`repro check
/// --journal`): every line is valid JSON with a record kind and schema
/// version; design points carry their identity and objectives;
/// frontier ranks are contiguous in file order and every frontier
/// point's identity also appears as a design point; the summary's
/// counts agree with the records around it.
pub fn validate_journal(text: &str) -> Result<JournalStats, String> {
    let mut stats = JournalStats::default();
    let mut design_identities: Vec<String> = Vec::new();
    let mut frontier_identities: Vec<String> = Vec::new();
    let mut summary: Option<(u64, u64)> = None; // (evaluated, frontier_size)
    for (n, line) in text.lines().enumerate() {
        let n = n + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).ok_or_else(|| format!("line {n}: not valid JSON"))?;
        let kind = require(&doc, &format!("line {n}"), "record")?
            .as_str()
            .ok_or_else(|| format!("line {n}: \"record\" must be a string"))?
            .to_owned();
        require(&doc, &format!("line {n}"), "schema_version")?
            .as_u64()
            .ok_or_else(|| format!("line {n}: \"schema_version\" must be an integer"))?;
        let ctx = format!("line {n} ({kind})");
        match kind.as_str() {
            "design_point" => {
                let id =
                    identity_of(&doc).ok_or_else(|| format!("{ctx}: incomplete identity keys"))?;
                require(&doc, &ctx, "cycles")?;
                require(&doc, &ctx, "energy_uj")?;
                design_identities.push(id);
                stats.design_points += 1;
            }
            "frontier" => {
                require(&doc, &ctx, "space")?;
                let rank = require(&doc, &ctx, "rank")?
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: \"rank\" must be an integer"))?;
                if rank as usize != frontier_identities.len() {
                    return Err(format!(
                        "{ctx}: rank {rank} out of order (expected {})",
                        frontier_identities.len()
                    ));
                }
                let id =
                    identity_of(&doc).ok_or_else(|| format!("{ctx}: incomplete identity keys"))?;
                require(&doc, &ctx, "cycles")?;
                require(&doc, &ctx, "energy_uj")?;
                require(&doc, &ctx, "area_kge")?;
                frontier_identities.push(id);
                stats.frontier_points += 1;
            }
            "dse_summary" => {
                for key in [
                    "space",
                    "workload",
                    "strategy",
                    "seed",
                    "lattice_points",
                    "pruned",
                ] {
                    require(&doc, &ctx, key)?;
                }
                let evaluated = require(&doc, &ctx, "evaluated")?
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: \"evaluated\" must be an integer"))?;
                let frontier_size = require(&doc, &ctx, "frontier_size")?
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: \"frontier_size\" must be an integer"))?;
                summary = Some((evaluated, frontier_size));
                stats.summaries += 1;
            }
            _ => stats.unknown += 1,
        }
    }
    for id in &frontier_identities {
        if !design_identities.contains(id) {
            return Err(format!(
                "frontier point {id:?} has no matching design_point record \
                 (the frontier must be a subset of the evaluated set)"
            ));
        }
    }
    if let Some((evaluated, frontier_size)) = summary {
        if evaluated as usize != stats.design_points {
            return Err(format!(
                "dse_summary says evaluated={evaluated} but the journal has {} design points",
                stats.design_points
            ));
        }
        if frontier_size as usize != stats.frontier_points {
            return Err(format!(
                "dse_summary says frontier_size={frontier_size} but the journal has {} frontier records",
                stats.frontier_points
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_core::metrics::config_identity;
    use ule_curves::params::CurveId;
    use ule_swlib::builder::Arch;

    fn cfg() -> SystemConfig {
        SystemConfig::new(CurveId::K163, Arch::Billie).with_billie_digit(4)
    }

    fn obj() -> Objectives {
        Objectives {
            cycles: 12345,
            energy_uj: 6.5,
            area_kge: 210.25,
        }
    }

    fn design_line() -> String {
        let mut r = Record::new("design_point");
        push_identity(&mut r, &cfg(), Workload::ScalarMul);
        r.push("cycles", 12345u64);
        r.push("energy_uj", 6.5);
        r.push("area_kge", 210.25);
        r.to_json()
    }

    #[test]
    fn identity_round_trips_through_a_journal_line() {
        let (points, skipped) = parse_design_points(&design_line());
        assert_eq!(skipped, 0);
        let identity = config_identity(&cfg(), Workload::ScalarMul);
        let p = &points[&identity];
        assert_eq!(p.cycles, 12345);
        assert_eq!(p.energy_uj, 6.5);
    }

    #[test]
    fn torn_and_unknown_lines_are_skipped() {
        let good = design_line();
        let torn = &good[..good.len() / 2];
        let text = format!("{good}\n{torn}\n{{\"record\":\"mystery\",\"schema_version\":9}}\n");
        let (points, skipped) = parse_design_points(&text);
        assert_eq!(points.len(), 1);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn validator_accepts_a_canonical_journal() {
        let f = frontier_record("s", 0, &cfg(), Workload::ScalarMul, &obj());
        let s = dse_summary_record("s", Workload::ScalarMul, "grid", 7, 1, 0, 1, 1);
        let text = format!("{}\n{}\n{}\n", design_line(), f.to_json(), s.to_json());
        let stats = validate_journal(&text).unwrap();
        assert_eq!(
            stats,
            JournalStats {
                design_points: 1,
                frontier_points: 1,
                summaries: 1,
                unknown: 0
            }
        );
    }

    #[test]
    fn validator_rejects_inconsistencies() {
        // Frontier point without its design point.
        let f = frontier_record("s", 0, &cfg(), Workload::ScalarMul, &obj());
        let err = validate_journal(&format!("{}\n", f.to_json())).unwrap_err();
        assert!(err.contains("no matching design_point"), "{err}");
        // Out-of-order rank.
        let f1 = frontier_record("s", 1, &cfg(), Workload::ScalarMul, &obj());
        let err = validate_journal(&format!("{}\n{}\n", design_line(), f1.to_json())).unwrap_err();
        assert!(err.contains("rank 1 out of order"), "{err}");
        // Summary count mismatch.
        let s = dse_summary_record("s", Workload::ScalarMul, "grid", 7, 2, 0, 2, 0);
        let err = validate_journal(&format!("{}\n{}\n", design_line(), s.to_json())).unwrap_err();
        assert!(err.contains("evaluated=2"), "{err}");
        // Torn line is a hard error here (unlike resume).
        let good = design_line();
        assert!(validate_journal(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn unknown_kinds_are_counted_not_fatal() {
        let text = "{\"record\":\"future_thing\",\"schema_version\":9}\n";
        let stats = validate_journal(text).unwrap();
        assert_eq!(stats.unknown, 1);
    }
}
