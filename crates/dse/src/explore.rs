//! The explorer: lattice enumeration → (resumable) evaluation via a
//! [`Strategy`] → incremental Pareto frontier → canonical journal.

use crate::journal::{self, parse_design_points};
use crate::pareto::{Objectives, ParetoFront};
use crate::strategy::{ExploreState, Strategy};
use crate::Evaluator;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use ule_core::metrics::config_identity;
use ule_core::space::{area_kge, SpaceError, SpaceSpec};
use ule_core::{SystemConfig, Workload};

/// Why an exploration could not run to completion.
#[derive(Debug)]
pub enum ExploreError {
    /// The space itself is invalid.
    Space(SpaceError),
    /// Journal I/O failed.
    Io(std::io::Error),
    /// The evaluator broke its contract (wrong result count).
    Evaluator(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Space(e) => write!(f, "invalid space: {e}"),
            ExploreError::Io(e) => write!(f, "journal I/O: {e}"),
            ExploreError::Evaluator(e) => write!(f, "evaluator: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<SpaceError> for ExploreError {
    fn from(e: SpaceError) -> Self {
        ExploreError::Space(e)
    }
}

impl From<std::io::Error> for ExploreError {
    fn from(e: std::io::Error) -> Self {
        ExploreError::Io(e)
    }
}

/// One frontier point of a finished exploration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontierEntry {
    /// Presentation rank: energy ascending, ties by lattice index.
    pub rank: usize,
    /// The configuration.
    pub config: SystemConfig,
    /// Its objectives.
    pub objectives: Objectives,
}

/// A finished exploration.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Space name.
    pub space: String,
    /// Workload every point ran.
    pub workload: Workload,
    /// Strategy name.
    pub strategy: String,
    /// Campaign seed (orders greedy's schedule; recorded for grid too).
    pub seed: u64,
    /// Size of the canonical lattice.
    pub lattice_points: usize,
    /// Points the strategy proved it never needs to evaluate.
    pub pruned: usize,
    /// Points with results in the journal (resumed + simulated).
    pub evaluated: usize,
    /// Points recovered from the journal instead of re-simulated.
    pub resumed: usize,
    /// Points actually simulated this run.
    pub simulated: usize,
    /// The Pareto frontier, rank order.
    pub frontier: Vec<FrontierEntry>,
}

/// Runs one exploration. `out` is the journal path: design points are
/// appended as they finish (so a killed run loses at most the
/// in-flight batch), matching points from an existing journal are
/// resumed without re-simulation, and on completion the file is
/// rewritten in canonical order — byte-identical across runs, resumes,
/// and thread counts.
pub fn explore(
    evaluator: &dyn Evaluator,
    space: &SpaceSpec,
    strategy: &mut dyn Strategy,
    seed: u64,
    out: Option<&Path>,
) -> Result<ExploreOutcome, ExploreError> {
    let lattice = space.enumerate()?;
    let identities: Vec<String> = lattice
        .iter()
        .map(|c| config_identity(c, space.workload))
        .collect();
    let mut objectives: Vec<Option<Objectives>> = vec![None; lattice.len()];
    let mut lines: Vec<Option<String>> = vec![None; lattice.len()];
    let mut frontier = ParetoFront::new();
    let mut resumed = 0usize;

    if let Some(path) = out {
        if path.exists() {
            let (recovered, _skipped) = parse_design_points(&fs::read_to_string(path)?);
            for (i, identity) in identities.iter().enumerate() {
                if let Some(p) = recovered.get(identity) {
                    let obj = Objectives {
                        cycles: p.cycles,
                        energy_uj: p.energy_uj,
                        area_kge: area_kge(&lattice[i]),
                    };
                    objectives[i] = Some(obj);
                    lines[i] = Some(p.line.clone());
                    frontier.insert(i, obj);
                    resumed += 1;
                }
            }
        }
    }

    let mut appender = match out {
        Some(path) => Some(OpenOptions::new().create(true).append(true).open(path)?),
        None => None,
    };
    let mut simulated = 0usize;
    loop {
        let batch = strategy.next_batch(&ExploreState {
            space,
            lattice: &lattice,
            evaluated: &objectives,
            frontier: &frontier,
        });
        if batch.is_empty() {
            break;
        }
        let jobs: Vec<(SystemConfig, Workload)> = batch
            .iter()
            .map(|&i| (lattice[i], space.workload))
            .collect();
        let evals = evaluator.evaluate(&jobs);
        if evals.len() != jobs.len() {
            return Err(ExploreError::Evaluator(format!(
                "returned {} results for {} jobs",
                evals.len(),
                jobs.len()
            )));
        }
        for (&i, ev) in batch.iter().zip(&evals) {
            let obj = Objectives {
                cycles: ev.cycles,
                energy_uj: ev.energy_uj,
                area_kge: area_kge(&lattice[i]),
            };
            let line = ev.record.to_json();
            if let Some(f) = appender.as_mut() {
                writeln!(f, "{line}")?;
            }
            objectives[i] = Some(obj);
            lines[i] = Some(line);
            frontier.insert(i, obj);
            simulated += 1;
        }
        if let Some(f) = appender.as_mut() {
            f.flush()?;
        }
    }
    drop(appender);

    let frontier = rank_frontier(&frontier);
    let evaluated = lines.iter().filter(|l| l.is_some()).count();
    let outcome = ExploreOutcome {
        space: space.name.clone(),
        workload: space.workload,
        strategy: strategy.name().to_owned(),
        seed,
        lattice_points: lattice.len(),
        pruned: strategy.pruned(),
        evaluated,
        resumed,
        simulated,
        frontier: frontier
            .iter()
            .enumerate()
            .map(|(rank, &(index, objectives))| FrontierEntry {
                rank,
                config: lattice[index],
                objectives,
            })
            .collect(),
    };

    if let Some(path) = out {
        let mut text = String::new();
        for line in lines.iter().flatten() {
            text.push_str(line);
            text.push('\n');
        }
        for e in &outcome.frontier {
            text.push_str(
                &journal::frontier_record(
                    &outcome.space,
                    e.rank,
                    &e.config,
                    outcome.workload,
                    &e.objectives,
                )
                .to_json(),
            );
            text.push('\n');
        }
        text.push_str(
            &journal::dse_summary_record(
                &outcome.space,
                outcome.workload,
                &outcome.strategy,
                outcome.seed,
                outcome.lattice_points,
                outcome.pruned,
                outcome.evaluated,
                outcome.frontier.len(),
            )
            .to_json(),
        );
        text.push('\n');
        fs::write(path, text)?;
    }
    Ok(outcome)
}

/// Presentation order of the frontier: energy ascending, ties by
/// lattice index — deterministic, like everything else in the journal.
fn rank_frontier(front: &ParetoFront) -> Vec<(usize, Objectives)> {
    let mut v: Vec<(usize, Objectives)> = front
        .points()
        .iter()
        .map(|p| (p.id, p.objectives))
        .collect();
    v.sort_by(|a, b| {
        a.1.energy_uj
            .partial_cmp(&b.1.energy_uj)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    v
}

/// A compact human label for a configuration: curve + arch plus only
/// the knobs that depart from the defaults of `SystemConfig::new`.
pub fn label(config: &SystemConfig) -> String {
    use ule_core::metrics::{arch_key, gating_key, mult_variant_key};
    use ule_energy::report::Gating;
    use ule_swlib::builder::Arch;
    let mut s = format!("{} {}", config.curve.name(), arch_key(config.arch));
    if let Some(c) = config.icache {
        s.push_str(&format!(
            " i${}{}{}",
            c.size_bytes / 1024,
            if c.size_bytes % 1024 == 0 { "K" } else { "B" },
            if c.ideal {
                "-ideal"
            } else if c.prefetch {
                "+pf"
            } else {
                ""
            },
        ));
    }
    if config.arch == Arch::Monte {
        let d = config.monte;
        if !d.double_buffer {
            s.push_str(" -dbuf");
        }
        if !d.forwarding {
            s.push_str(" -fwd");
        }
        if d.queue_depth != 4 {
            s.push_str(&format!(" q{}", d.queue_depth));
        }
    }
    if config.arch == Arch::Billie {
        s.push_str(&format!(" d{}", config.billie_digit));
        if config.billie_sram_rf {
            s.push_str(" sram-rf");
        }
    }
    if config.mult_variant != ule_core::MultVariant::Karatsuba {
        s.push_str(&format!(" {}", mult_variant_key(config.mult_variant)));
    }
    if config.gating != Gating::None {
        s.push_str(&format!(" {}-gated", gating_key(config.gating)));
    }
    s
}

/// Reconstructs a finished exploration from its canonical journal —
/// the basis of `repro explore --report`, which must not re-simulate.
/// Requires at least the `frontier` records and the `dse_summary`; the
/// per-run `resumed`/`simulated` counts are not journaled (they are
/// resume-dependent) and come back as zero.
pub fn outcome_from_journal(text: &str) -> Result<ExploreOutcome, String> {
    use ule_obs::json;
    let mut frontier = Vec::new();
    let mut summary = None;
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).ok_or_else(|| format!("line {}: not valid JSON", n + 1))?;
        match doc.get("record").and_then(|v| v.as_str()) {
            Some("frontier") => {
                let rank = doc
                    .get("rank")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("line {}: frontier without rank", n + 1))?;
                let (config, _workload) = journal::config_from_record(&doc)?;
                let objectives = Objectives {
                    cycles: doc
                        .get("cycles")
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| format!("line {}: frontier without cycles", n + 1))?,
                    energy_uj: doc
                        .get("energy_uj")
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| format!("line {}: frontier without energy_uj", n + 1))?,
                    area_kge: doc
                        .get("area_kge")
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| format!("line {}: frontier without area_kge", n + 1))?,
                };
                frontier.push(FrontierEntry {
                    rank: rank as usize,
                    config,
                    objectives,
                });
            }
            Some("dse_summary") => {
                let get_str = |key: &str| {
                    doc.get(key)
                        .and_then(|v| v.as_str())
                        .map(str::to_owned)
                        .ok_or_else(|| format!("line {}: summary missing {key:?}", n + 1))
                };
                let get_u64 = |key: &str| {
                    doc.get(key)
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| format!("line {}: summary missing {key:?}", n + 1))
                };
                summary = Some(ExploreOutcome {
                    space: get_str("space")?,
                    workload: crate::spaces::parse_workload(&get_str("workload")?)?,
                    strategy: get_str("strategy")?,
                    seed: get_u64("seed")?,
                    lattice_points: get_u64("lattice_points")? as usize,
                    pruned: get_u64("pruned")? as usize,
                    evaluated: get_u64("evaluated")? as usize,
                    resumed: 0,
                    simulated: 0,
                    frontier: Vec::new(),
                });
            }
            _ => {}
        }
    }
    let mut outcome =
        summary.ok_or("journal has no dse_summary record (incomplete exploration?)")?;
    frontier.sort_by_key(|e| e.rank);
    outcome.frontier = frontier;
    Ok(outcome)
}

/// Renders the frontier table of a finished exploration, with each
/// point's deltas against the paper's fixed configuration for the same
/// curve and architecture (`SystemConfig::new(curve, arch)` — digit 3,
/// default front end, no gating, flip-flop register file). The
/// reference points are evaluated through the same engine (memoized,
/// so repeated references cost one simulation).
pub fn render_report(
    evaluator: &dyn Evaluator,
    outcome: &ExploreOutcome,
) -> Result<String, ExploreError> {
    use std::fmt::Write as _;
    let refs: Vec<(SystemConfig, Workload)> = outcome
        .frontier
        .iter()
        .map(|e| {
            (
                ule_core::space::canonicalize(SystemConfig::new(e.config.curve, e.config.arch)),
                outcome.workload,
            )
        })
        .collect();
    let ref_evals = evaluator.evaluate(&refs);
    if ref_evals.len() != refs.len() {
        return Err(ExploreError::Evaluator(format!(
            "returned {} results for {} reference jobs",
            ref_evals.len(),
            refs.len()
        )));
    }
    let mut t = String::new();
    let _ = writeln!(
        t,
        "frontier of space {:?} ({} points / {} evaluated / {} lattice, strategy {}):",
        outcome.space,
        outcome.frontier.len(),
        outcome.evaluated,
        outcome.lattice_points,
        &outcome.strategy,
    );
    let _ = writeln!(
        t,
        "{:>4}  {:<32} {:>12} {:>12} {:>10} {:>18}",
        "rank", "config", "cycles", "energy_uj", "area_kge", "vs paper cfg E/cyc"
    );
    for (e, r) in outcome.frontier.iter().zip(&ref_evals) {
        let de = 100.0 * (e.objectives.energy_uj - r.energy_uj) / r.energy_uj;
        let dc = 100.0 * (e.objectives.cycles as f64 - r.cycles as f64) / r.cycles as f64;
        let _ = writeln!(
            t,
            "{:>4}  {:<32} {:>12} {:>12.4} {:>10.2} {:>+8.1}% {:>+8.1}%",
            e.rank,
            label(&e.config),
            e.objectives.cycles,
            e.objectives.energy_uj,
            e.objectives.area_kge,
            de,
            dc,
        );
    }
    Ok(t)
}
