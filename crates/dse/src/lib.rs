//! `ule-dse` — automated design-space exploration with Pareto-frontier
//! extraction.
//!
//! The paper walks its design space by hand: one chapter per axis
//! (instruction caches §7.5, Monte front ends §7.7, Billie digit widths
//! Fig 7.14, multiplier variants §7.8), each swept around a fixed
//! reference configuration. This crate closes the loop and explores the
//! space *automatically*:
//!
//! * [`ule_core::space::SpaceSpec`] declares a parameter lattice over
//!   every `SystemConfig` knob, with per-architecture validity rules;
//! * a [`strategy::Strategy`] decides which points to evaluate —
//!   exhaustive [`strategy::Grid`], or [`strategy::Greedy`], which
//!   analytically prunes provably-dominated points and schedules the
//!   survivors by seed;
//! * evaluation goes through an [`Evaluator`] (in production,
//!   `ule-bench`'s memoizing parallel `SweepEngine`);
//! * [`pareto::ParetoFront`] maintains the energy × cycles × area
//!   frontier incrementally, with lattice-index tie-breaking that makes
//!   it a pure function of the evaluated set;
//! * [`explore::explore`] orchestrates the run and persists a
//!   resumable, byte-stable JSONL [`journal`].
//!
//! Everything is deterministic: same space, same seed, same journal
//! bytes — regardless of strategy, thread count, or how many times the
//! run was killed and resumed. The `repro explore` subcommand is the
//! CLI surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod journal;
pub mod pareto;
pub mod spaces;
pub mod strategy;

use ule_core::{SystemConfig, Workload};
use ule_obs::record::Record;

/// One evaluated design point, as the explorer consumes it.
#[derive(Clone, Debug)]
pub struct PointEval {
    /// The full `design_point` metrics record (one journal line).
    pub record: Record,
    /// Simulated cycles (one copy of the headline objective, so the
    /// explorer does not re-parse its own record).
    pub cycles: u64,
    /// Total energy, µJ.
    pub energy_uj: f64,
}

/// Something that can simulate design points — the seam between this
/// crate and the simulation engine. `ule-bench` implements it for its
/// `SweepEngine`; tests implement it with synthetic results.
pub trait Evaluator {
    /// Evaluates each job, returning results in input order (one per
    /// job). Implementations are expected to be deterministic: the
    /// journal's byte-stability guarantee is only as good as theirs.
    fn evaluate(&self, jobs: &[(SystemConfig, Workload)]) -> Vec<PointEval>;
}

pub use explore::{explore, ExploreError, ExploreOutcome, FrontierEntry};
pub use pareto::{dominates, Objectives, ParetoFront};
pub use strategy::{Greedy, Grid, Strategy};
