//! Exploration strategies: which lattice points to evaluate, in which
//! order.
//!
//! Both built-in strategies recover the **same frontier**:
//!
//! * [`Grid`] exhaustively evaluates every lattice point in canonical
//!   order;
//! * [`Greedy`] first discards points that an *analytic* argument
//!   proves can never reach the frontier (see [`provably_pruned`]),
//!   then evaluates the survivors in successive-halving batches whose
//!   order is a pure function of the seed, re-prioritizing lattice
//!   neighbours of the current frontier between batches.
//!
//! Greedy's pruning is sound by construction: a point is only dropped
//! when a specific sibling — same configuration with one knob replaced
//! — is (a) provably no worse on every objective by a documented
//! energy-model monotonicity, and (b) *earlier* in the canonical
//! lattice order. Under the index tie-breaking dominance of
//! [`crate::pareto::dominates`] the sibling then dominates the dropped
//! point outright, and because "earlier index" is acyclic the chain of
//! prunes always terminates at an evaluated point. Dropping dominated
//! points never changes the maximal elements, so grid and greedy agree
//! exactly — which the CI `explore` job asserts byte-for-byte.

use crate::pareto::{Objectives, ParetoFront};
use std::collections::HashMap;
use ule_core::space::{canonicalize, SpaceSpec};
use ule_core::SystemConfig;
use ule_energy::report::Gating;
use ule_testkit::Rng;

/// Everything a strategy may consult when planning the next batch.
pub struct ExploreState<'a> {
    /// The declarative space being explored.
    pub space: &'a SpaceSpec,
    /// The canonical lattice (`SpaceSpec::enumerate` order).
    pub lattice: &'a [SystemConfig],
    /// Per-lattice-index objectives, `Some` once evaluated (including
    /// points resumed from a journal).
    pub evaluated: &'a [Option<Objectives>],
    /// The frontier over everything evaluated so far.
    pub frontier: &'a ParetoFront,
}

/// A batch-planning policy over the lattice.
pub trait Strategy {
    /// Stable strategy name (journal `dse_summary.strategy`).
    fn name(&self) -> &'static str;
    /// Lattice indices to evaluate next; empty means the strategy is
    /// done. Must only return indices not yet evaluated.
    fn next_batch(&mut self, state: &ExploreState<'_>) -> Vec<usize>;
    /// How many lattice points the strategy proved it never needs to
    /// evaluate.
    fn pruned(&self) -> usize {
        0
    }
}

/// Exhaustive evaluation in canonical lattice order, in fixed-size
/// batches (the batch size only shapes journal flush granularity —
/// results are order-independent).
pub struct Grid {
    cursor: usize,
}

/// Points per [`Grid`] batch: small enough that an interrupted run
/// resumes most finished work, large enough to keep the parallel
/// engine's threads fed.
pub const GRID_BATCH: usize = 32;

impl Grid {
    /// A fresh grid sweep.
    pub fn new() -> Self {
        Grid { cursor: 0 }
    }
}

impl Default for Grid {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for Grid {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn next_batch(&mut self, state: &ExploreState<'_>) -> Vec<usize> {
        let mut batch = Vec::new();
        while self.cursor < state.lattice.len() && batch.len() < GRID_BATCH {
            if state.evaluated[self.cursor].is_none() {
                batch.push(self.cursor);
            }
            self.cursor += 1;
        }
        batch
    }
}

/// Which lattice points can be discarded without evaluation, per the
/// documented energy-model monotonicities. `index_of` must map every
/// lattice config to its canonical index.
///
/// A point `b` is pruned iff some single-knob sibling `a` satisfies
/// both: `a`'s objectives are provably `≤ b`'s componentwise, and
/// `a` precedes `b` in the lattice. The provable knob relations:
///
/// * **mult_variant** — the §7.8 variants scale core power by a
///   constant factor and touch nothing else (timing and area
///   unchanged), so a variant with a smaller-or-equal factor is no
///   worse on all three objectives.
/// * **gating** — clock gating only removes idle accelerator dynamic
///   energy relative to no gating (timing and area unchanged), so
///   `Clock ≤ None`. Power gating is *not* provable: it trades idle
///   dynamic for a different static accounting that can lose when the
///   accelerator's DMA overlaps compute.
/// * **billie_sram_rf** — the SRAM register file scales Billie's RF
///   dynamic, static, *and* area contributions by factors `< 1` with
///   timing unchanged, so `true ≤ false`.
pub fn provably_pruned(
    space: &SpaceSpec,
    lattice: &[SystemConfig],
    index_of: &HashMap<SystemConfig, usize>,
) -> Vec<bool> {
    let dominated_at = |sibling: SystemConfig, i: usize| -> bool {
        sibling != lattice[i] && index_of.get(&sibling).is_some_and(|&j| j < i)
    };
    lattice
        .iter()
        .enumerate()
        .map(|(i, &cfg)| {
            for &v in space.mult_variants() {
                if v != cfg.mult_variant && v.factor() <= cfg.mult_variant.factor() {
                    let mut s = cfg;
                    s.mult_variant = v;
                    if dominated_at(canonicalize(s), i) {
                        return true;
                    }
                }
            }
            if cfg.gating == Gating::None && space.gatings().contains(&Gating::Clock) {
                let mut s = cfg;
                s.gating = Gating::Clock;
                if dominated_at(canonicalize(s), i) {
                    return true;
                }
            }
            if !cfg.billie_sram_rf && space.billie_sram_rf().contains(&true) {
                let mut s = cfg;
                s.billie_sram_rf = true;
                if dominated_at(canonicalize(s), i) {
                    return true;
                }
            }
            false
        })
        .collect()
}

/// Analytic pruning + seeded successive-halving evaluation, frontier
/// neighbours first.
pub struct Greedy {
    seed: u64,
    pruned: usize,
    /// Unevaluated survivors in current priority order (`None` until
    /// the first batch computes the plan).
    queue: Option<Vec<usize>>,
}

impl Greedy {
    /// A greedy sweep; `seed` fixes the evaluation order (and nothing
    /// else — the frontier is seed-independent).
    pub fn new(seed: u64) -> Self {
        Greedy {
            seed,
            pruned: 0,
            queue: None,
        }
    }

    fn plan(&mut self, state: &ExploreState<'_>) -> Vec<usize> {
        let index_of: HashMap<SystemConfig, usize> = state
            .lattice
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let pruned = provably_pruned(state.space, state.lattice, &index_of);
        self.pruned = pruned.iter().filter(|&&p| p).count();
        let mut survivors: Vec<usize> = (0..state.lattice.len()).filter(|&i| !pruned[i]).collect();
        // Fisher–Yates with the campaign RNG: the schedule is a pure
        // function of (space, seed).
        let mut rng = Rng::new(self.seed);
        for i in (1..survivors.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            survivors.swap(i, j);
        }
        survivors
    }
}

/// Whether two lattice points differ in exactly one configuration knob
/// — the neighbourhood the greedy strategy walks first around frontier
/// points.
fn single_knob_neighbours(a: &SystemConfig, b: &SystemConfig) -> bool {
    let diffs = usize::from(a.curve != b.curve)
        + usize::from(a.arch != b.arch)
        + usize::from(a.icache != b.icache)
        + usize::from(a.monte != b.monte)
        + usize::from(a.billie_digit != b.billie_digit)
        + usize::from(a.mult_variant != b.mult_variant)
        + usize::from(a.gating != b.gating)
        + usize::from(a.billie_sram_rf != b.billie_sram_rf);
    diffs == 1
}

impl Strategy for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn next_batch(&mut self, state: &ExploreState<'_>) -> Vec<usize> {
        if self.queue.is_none() {
            let plan = self.plan(state);
            self.queue = Some(plan);
        }
        let queue = self.queue.as_mut().expect("planned above");
        queue.retain(|&i| state.evaluated[i].is_none());
        if queue.is_empty() {
            return Vec::new();
        }
        // Frontier guidance: stable-sort the remaining schedule so
        // single-knob neighbours of current frontier points run first.
        // Stability keeps the seeded order within each class, so the
        // whole schedule stays deterministic.
        queue.sort_by_key(|&i| {
            let near = state
                .frontier
                .points()
                .iter()
                .any(|p| single_knob_neighbours(&state.lattice[i], &state.lattice[p.id]));
            u8::from(!near)
        });
        // Successive halving: evaluate half the remaining schedule per
        // round (at least one point), shrinking as the frontier firms
        // up.
        let take = queue.len().div_ceil(2);
        queue.drain(..take).collect()
    }

    fn pruned(&self) -> usize {
        self.pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_core::space::Axis;
    use ule_core::{MultVariant, Workload};
    use ule_curves::params::CurveId;
    use ule_swlib::builder::Arch;

    fn billie_space() -> SpaceSpec {
        SpaceSpec::new("t", Workload::ScalarMul)
            .axis(Axis::Curves(vec![CurveId::K163]))
            .axis(Axis::Archs(vec![Arch::Billie]))
            .axis(Axis::BillieDigits(vec![1, 2, 3]))
            .axis(Axis::MultVariants(vec![
                MultVariant::Karatsuba,
                MultVariant::OperandScan,
                MultVariant::Parallel,
            ]))
    }

    #[test]
    fn pruning_keeps_exactly_the_cheapest_variant() {
        let space = billie_space();
        let lattice = space.enumerate().unwrap();
        assert_eq!(lattice.len(), 9);
        let index_of: HashMap<SystemConfig, usize> =
            lattice.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let pruned = provably_pruned(&space, &lattice, &index_of);
        for (i, cfg) in lattice.iter().enumerate() {
            assert_eq!(
                pruned[i],
                cfg.mult_variant != MultVariant::Karatsuba,
                "point {i}: {cfg:?}"
            );
        }
    }

    #[test]
    fn pruning_respects_declared_axis_order() {
        // Karatsuba declared *last*: pruning requires the dominating
        // sibling to come earlier in the lattice. Parallel is earlier
        // but has the worse factor (never dominates); Karatsuba
        // dominates but is later. Net effect: no pruning at all —
        // correctness never depends on the declared order, only the
        // amount of pruning does.
        let space = billie_space().axis(Axis::MultVariants(vec![
            MultVariant::Parallel,
            MultVariant::OperandScan,
            MultVariant::Karatsuba,
        ]));
        let lattice = space.enumerate().unwrap();
        let index_of: HashMap<SystemConfig, usize> =
            lattice.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let pruned = provably_pruned(&space, &lattice, &index_of);
        assert!(pruned.iter().all(|&p| !p));
    }

    #[test]
    fn greedy_schedule_is_a_pure_function_of_the_seed() {
        let space = billie_space();
        let lattice = space.enumerate().unwrap();
        let evaluated = vec![None; lattice.len()];
        let frontier = ParetoFront::new();
        let schedule = |seed| {
            let mut g = Greedy::new(seed);
            let mut out = Vec::new();
            loop {
                let state = ExploreState {
                    space: &space,
                    lattice: &lattice,
                    evaluated: &evaluated,
                    frontier: &frontier,
                };
                let mut batch = g.next_batch(&state);
                if batch.is_empty() {
                    break;
                }
                out.append(&mut batch);
            }
            out
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
        // Every survivor is scheduled exactly once.
        let mut s = schedule(7);
        s.sort_unstable();
        assert_eq!(s, vec![0, 3, 6]); // the three Karatsuba points
    }

    #[test]
    fn grid_covers_everything_in_order() {
        let space = billie_space();
        let lattice = space.enumerate().unwrap();
        let evaluated = vec![None; lattice.len()];
        let frontier = ParetoFront::new();
        let mut g = Grid::new();
        let state = ExploreState {
            space: &space,
            lattice: &lattice,
            evaluated: &evaluated,
            frontier: &frontier,
        };
        assert_eq!(g.next_batch(&state), (0..9).collect::<Vec<_>>());
        assert!(g.next_batch(&state).is_empty());
        assert_eq!(g.pruned(), 0);
    }
}
