//! Chrome trace-event JSON output (the "Trace Event Format" that
//! `chrome://tracing`, Perfetto and speedscope load).
//!
//! Only the small subset this workspace emits is supported: the
//! object-wrapped form `{"traceEvents":[...]}` with `ph:"M"` metadata
//! events (process/thread names) and `ph:"X"` complete events
//! (name, ts, dur in microseconds). The writer goes through
//! [`JsonBuf`]; [`validate_trace_events`] is the strict consumer-side
//! check the tests and the CI `profile` job run against emitted files.

use crate::json::{self, JsonBuf};

/// Streaming writer for a trace-event file.
#[derive(Debug)]
pub struct TraceEventsBuf {
    buf: JsonBuf,
}

impl Default for TraceEventsBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceEventsBuf {
    /// Opens the `traceEvents` array.
    pub fn new() -> Self {
        let mut buf = JsonBuf::new();
        buf.begin_object().key("traceEvents").begin_array();
        TraceEventsBuf { buf }
    }

    /// Emits a `process_name` metadata event for `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) -> &mut Self {
        self.buf
            .begin_object()
            .key("name")
            .value_str("process_name")
            .key("ph")
            .value_str("M")
            .key("pid")
            .value_u64(pid)
            .key("tid")
            .value_u64(0)
            .key("args")
            .begin_object()
            .key("name")
            .value_str(name)
            .end_object()
            .end_object();
        self
    }

    /// Emits a `thread_name` metadata event for `(pid, tid)`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) -> &mut Self {
        self.buf
            .begin_object()
            .key("name")
            .value_str("thread_name")
            .key("ph")
            .value_str("M")
            .key("pid")
            .value_u64(pid)
            .key("tid")
            .value_u64(tid)
            .key("args")
            .begin_object()
            .key("name")
            .value_str(name)
            .end_object()
            .end_object();
        self
    }

    /// Emits a complete (`ph:"X"`) event: `name` spanning
    /// `[ts_us, ts_us + dur_us]` microseconds, with numeric `args`.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, u64)],
    ) -> &mut Self {
        self.buf
            .begin_object()
            .key("name")
            .value_str(name)
            .key("ph")
            .value_str("X")
            .key("ts")
            .value_f64(ts_us)
            .key("dur")
            .value_f64(dur_us)
            .key("pid")
            .value_u64(pid)
            .key("tid")
            .value_u64(tid);
        if !args.is_empty() {
            self.buf.key("args").begin_object();
            for (k, v) in args {
                self.buf.key(k).value_u64(*v);
            }
            self.buf.end_object();
        }
        self.buf.end_object();
        self
    }

    /// Closes the file, returning the serialized JSON.
    pub fn finish(mut self) -> String {
        self.buf.end_array().end_object();
        self.buf.finish()
    }
}

/// Summary returned by a successful [`validate_trace_events`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceEventsStats {
    /// All events in the file.
    pub events: usize,
    /// `ph:"X"` complete events.
    pub complete_events: usize,
    /// `ph:"M"` metadata events.
    pub metadata_events: usize,
}

/// Validates a trace-event JSON document: the wrapper object, the
/// `traceEvents` array, and per-event required fields (`ph:"X"` events
/// must carry finite, non-negative `ts`/`dur`). Returns counts on
/// success, a located error message on failure.
pub fn validate_trace_events(s: &str) -> Result<TraceEventsStats, String> {
    let doc = json::parse(s).ok_or("not valid JSON")?;
    let events = doc
        .get("traceEvents")
        .ok_or("no traceEvents member")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut stats = TraceEventsStats {
        events: events.len(),
        ..Default::default()
    };
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: no ph"))?;
        e.get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: no name"))?;
        for key in ["pid", "tid"] {
            e.get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("event {i}: no numeric {key}"))?;
        }
        match ph {
            "X" => {
                for key in ["ts", "dur"] {
                    let v = e
                        .get(key)
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| format!("event {i}: complete event without {key}"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("event {i}: {key} = {v} is not a duration"));
                    }
                }
                stats.complete_events += 1;
            }
            "M" => stats.metadata_events += 1,
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_validates() {
        let mut t = TraceEventsBuf::new();
        t.process_name(1, "P-192/monte/sign");
        t.thread_name(1, 1, "call tree");
        t.complete(1, 1, "fmul", 0.0, 12.5, &[("cycles", 4167)]);
        t.complete(1, 1, "fred", 12.5, 3.0, &[]);
        let s = t.finish();
        let stats = validate_trace_events(&s).unwrap();
        assert_eq!(stats.events, 4);
        assert_eq!(stats.complete_events, 2);
        assert_eq!(stats.metadata_events, 2);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_trace_events("[]").is_err(), "bare array");
        assert!(validate_trace_events(r#"{"traceEvents":{}}"#).is_err());
        assert!(
            validate_trace_events(r#"{"traceEvents":[{"ph":"X","name":"a","pid":0,"tid":0}]}"#)
                .is_err(),
            "X without ts/dur"
        );
        assert!(
            validate_trace_events(
                r#"{"traceEvents":[{"ph":"X","name":"a","pid":0,"tid":0,"ts":0,"dur":-1}]}"#
            )
            .is_err(),
            "negative dur"
        );
        assert!(
            validate_trace_events(
                r#"{"traceEvents":[{"ph":"B","name":"a","pid":0,"tid":0,"ts":0}]}"#
            )
            .is_err(),
            "unsupported phase"
        );
        let ok = validate_trace_events(r#"{"traceEvents":[]}"#).unwrap();
        assert_eq!(ok.events, 0);
    }
}
