//! Collapsed-stack ("folded") flamegraph output.
//!
//! The format is the one `flamegraph.pl --reverse`-era tooling and all
//! modern viewers (speedscope, inferno, Firefox Profiler) ingest: one
//! line per unique call path,
//!
//! ```text
//! root;child;leaf 12345
//! ```
//!
//! frames joined by `;`, a space, and an integer weight (cycles or
//! nanojoules here). Writing is trivial; the value of this module is a
//! strict parser/validator the tests and the CI `profile` job use to
//! prove emitted files actually load.

/// Renders `(path, weight)` pairs as folded lines, sorted (weight
/// descending, then path ascending) so output is byte-stable for any
/// input order.
pub fn to_folded(stacks: &[(String, u64)]) -> String {
    let mut sorted: Vec<&(String, u64)> = stacks.iter().collect();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut out = String::new();
    for (path, weight) in sorted {
        out.push_str(path);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

/// Parses a folded file back into `(path, weight)` pairs, rejecting
/// anything a flamegraph consumer would choke on: empty paths, empty
/// frames (`a;;b`), missing or non-integer weights, leading/extra
/// whitespace. Blank lines are ignored.
pub fn parse_folded(s: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in s.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let (path, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no space-separated weight: {line:?}"))?;
        if path.is_empty() {
            return Err(format!("line {n}: empty stack path"));
        }
        if path.split(';').any(|frame| frame.is_empty()) {
            return Err(format!("line {n}: empty frame in path {path:?}"));
        }
        if path.contains(' ') {
            return Err(format!("line {n}: space inside stack path {path:?}"));
        }
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("line {n}: weight {weight:?} is not a non-negative integer"))?;
        out.push((path.to_owned(), weight));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_round_trip_is_sorted_and_stable() {
        let stacks = vec![
            ("main;a".to_owned(), 5),
            ("main".to_owned(), 9),
            ("main;a;b".to_owned(), 5),
        ];
        let s = to_folded(&stacks);
        assert_eq!(s, "main 9\nmain;a 5\nmain;a;b 5\n");
        let back = parse_folded(&s).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], ("main".to_owned(), 9));
        // Input order must not matter.
        let mut rev = stacks.clone();
        rev.reverse();
        assert_eq!(to_folded(&rev), s);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_folded("noweight\n").is_err());
        assert!(parse_folded("a;;b 3\n").is_err());
        assert!(parse_folded(" 3\n").is_err());
        assert!(parse_folded("a b 3x\n").is_err());
        assert!(parse_folded("a b c\n").is_err(), "space inside path");
        assert!(parse_folded("a -1\n").is_err());
        assert!(parse_folded("").unwrap().is_empty());
        assert_eq!(parse_folded("x 0\n\ny 1\n").unwrap().len(), 2);
    }
}
