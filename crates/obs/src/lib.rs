//! `ule-obs` — observability for the ULE asymmetric-crypto design-space
//! repro: a structured event layer, a flat versioned metrics registry,
//! and the hand-rolled JSON plumbing both are built on.
//!
//! # Design
//!
//! - **Null sink by default, one branch on hot paths.** Event emission
//!   is gated by a process-global [`AtomicBool`]; when no sink is
//!   installed (the default), [`enabled`] is `false` and the
//!   [`obs_event!`] macro evaluates none of its field expressions — the
//!   cost in instrumented loops is a single relaxed atomic load and a
//!   predictable branch.
//! - **JSONL sink for `--trace`.** [`JsonlFileSink`] appends one JSON
//!   object per event with a sequence number, microsecond timestamp
//!   relative to sink installation, and the OS thread that emitted it.
//! - **Flat, versioned metrics.** [`record::Record`] /
//!   [`record::MetricsRegistry`] snapshot counter structs into flat
//!   key/value records carrying [`record::SCHEMA_VERSION`]; the schema
//!   is pinned by golden-file tests in `ule-bench`.
//! - **Zero external dependencies.** JSON is written by hand
//!   ([`json::JsonBuf`]) and checked by a tiny validator
//!   ([`json::is_valid`]), keeping the workspace's offline-build
//!   policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flame;
pub mod flight;
pub mod hist;
pub mod json;
pub mod progress;
pub mod record;
pub mod trace_events;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A dynamically typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized as `null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// A pre-serialized JSON fragment, spliced in verbatim.
    Raw(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Receives structured events from the instrumented crates.
pub trait EventSink: Send {
    /// Handles one event. `kind` is a short static tag
    /// (e.g. `"sweep.job"`); `fields` are flat key/value pairs.
    fn event(&mut self, kind: &str, fields: &[(&str, Value)]);
    /// Flushes any buffered output.
    fn flush(&mut self) {}
}

/// Fast-path gate: true iff a sink is installed. Instrumented loops
/// check this (one relaxed load) before building any event fields.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether per-routine PC profiling is requested for *new* simulations.
/// Read once per `System::run`; see `ule-core`.
static PROFILING: AtomicBool = AtomicBool::new(false);

static SINK: Mutex<Option<Box<dyn EventSink>>> = Mutex::new(None);

/// True iff an event sink is installed. The [`obs_event!`] and
/// [`obs_span!`] macros check this so the null-sink cost is one branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global event sink, replacing (and
/// flushing) any previous one.
pub fn set_sink(sink: Box<dyn EventSink>) {
    let mut s = SINK.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(old) = s.replace(sink) {
        drop_flushed(old);
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the installed sink (flushing it) and restores the free null
/// sink.
pub fn clear_sink() {
    let mut s = SINK.lock().unwrap_or_else(|p| p.into_inner());
    ENABLED.store(false, Ordering::SeqCst);
    if let Some(old) = s.take() {
        drop_flushed(old);
    }
}

fn drop_flushed(mut sink: Box<dyn EventSink>) {
    sink.flush();
}

/// Requests (or cancels) per-routine PC profiling for simulations
/// started after this call. Read once at the start of each run, so
/// memoized [`run reports`](crate) stay internally consistent.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::SeqCst);
}

/// True iff per-routine PC profiling is requested.
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Delivers one event to the installed sink, if any. Prefer the
/// [`obs_event!`] macro, which skips field construction when disabled.
pub fn emit(kind: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    let mut s = SINK.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(sink) = s.as_mut() {
        sink.event(kind, fields);
    }
}

/// Flushes the installed sink, if any.
pub fn flush() {
    let mut s = SINK.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(sink) = s.as_mut() {
        sink.flush();
    }
}

/// Emits a `warn` event and mirrors it on stderr (so warnings surface
/// even under the null sink). Prefer [`obs_warn_once!`] at call sites
/// that can fire per-job.
pub fn warn(msg: &str, fields: &[(&str, Value)]) {
    eprintln!("warning: {msg}");
    if enabled() {
        let mut all = Vec::with_capacity(fields.len() + 1);
        all.push(("message", Value::Str(msg.to_owned())));
        all.extend_from_slice(fields);
        emit("warn", &all);
    }
}

/// Emits a structured event iff a sink is installed. Field expressions
/// are not evaluated under the null sink.
///
/// ```
/// ule_obs::obs_event!("sweep.job", id = 3u64, memo_hit = false);
/// ```
#[macro_export]
macro_rules! obs_event {
    ($kind:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit($kind, &[
                $((stringify!($key), $crate::Value::from($val)),)*
            ]);
        }
    };
}

/// Emits a warning (stderr + `warn` event) at most once per call site,
/// no matter how many threads race through it.
#[macro_export]
macro_rules! obs_warn_once {
    ($msg:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        static ONCE: ::std::sync::Once = ::std::sync::Once::new();
        ONCE.call_once(|| {
            $crate::warn($msg, &[
                $((stringify!($key), $crate::Value::from($val)),)*
            ]);
        });
    }};
}

/// Starts a [`Span`] guard that emits `<kind>` with a `dur_us` field
/// when dropped. Returns a no-op guard under the null sink.
pub fn span(kind: &'static str) -> Span {
    Span {
        kind,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
        fields: Vec::new(),
    }
}

/// A drop guard measuring the wall-clock duration of a scope; see
/// [`span`].
#[must_use = "a span measures the scope it is held in"]
pub struct Span {
    kind: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// Attaches a field to the eventual span event. No-op under the
    /// null sink.
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) -> &mut Self {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_us = start.elapsed().as_micros() as u64;
            let mut fields = std::mem::take(&mut self.fields);
            fields.push(("dur_us", Value::U64(dur_us)));
            emit(self.kind, &fields);
        }
    }
}

/// A sink that appends one JSON object per event to a writer (the
/// `--trace <path>` backend). Each line carries `seq` (per-sink event
/// number), `t_us` (microseconds since sink construction), `thread`
/// (OS thread name-or-id), `kind`, and the event's own fields.
pub struct JsonlFileSink<W: std::io::Write + Send> {
    out: W,
    epoch: Instant,
    seq: AtomicU64,
}

impl JsonlFileSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and returns a buffered sink over it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlFileSink::new(std::io::BufWriter::new(f)))
    }
}

impl<W: std::io::Write + Send> JsonlFileSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlFileSink {
            out,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// The name of the calling OS thread, or its id when unnamed — the
/// `thread` field of every serialized event line.
pub(crate) fn current_thread_label() -> String {
    std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{:?}", std::thread::current().id()))
}

/// Serializes one event into the canonical JSONL line shape shared by
/// [`JsonlFileSink`] and the flight recorder: `seq`, `t_us`, `thread`,
/// `kind`, then the event's own fields.
pub(crate) fn event_line(
    seq: u64,
    t_us: u64,
    thread: &str,
    kind: &str,
    fields: &[(&str, Value)],
) -> String {
    let mut b = json::JsonBuf::new();
    b.begin_object();
    b.key("seq").value_u64(seq);
    b.key("t_us").value_u64(t_us);
    b.key("thread").value_str(thread);
    b.key("kind").value_str(kind);
    for (k, v) in fields {
        b.key(k);
        match v {
            Value::U64(n) => b.value_u64(*n),
            Value::I64(n) => b.value_i64(*n),
            Value::F64(n) => b.value_f64(*n),
            Value::Bool(x) => b.value_bool(*x),
            Value::Str(s) => b.value_str(s),
            Value::Raw(j) => b.value_raw(j),
        };
    }
    b.end_object();
    b.finish()
}

impl<W: std::io::Write + Send> EventSink for JsonlFileSink<W> {
    fn event(&mut self, kind: &str, fields: &[(&str, Value)]) {
        let line = event_line(
            self.seq.fetch_add(1, Ordering::Relaxed),
            self.epoch.elapsed().as_micros() as u64,
            &current_thread_label(),
            kind,
            fields,
        );
        let _ = writeln!(self.out, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// One event collected by a [`VecSink`]: `(kind, fields)`.
pub type CollectedEvent = (String, Vec<(String, Value)>);

/// A sink that collects events in memory — test support.
#[derive(Default)]
pub struct VecSink {
    shared: std::sync::Arc<Mutex<Vec<CollectedEvent>>>,
}

impl VecSink {
    /// A fresh sink plus a shared handle to the events it will collect.
    pub fn new() -> (Self, std::sync::Arc<Mutex<Vec<CollectedEvent>>>) {
        let sink = VecSink::default();
        let handle = sink.shared.clone();
        (sink, handle)
    }
}

impl EventSink for VecSink {
    fn event(&mut self, kind: &str, fields: &[(&str, Value)]) {
        let fields = fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect();
        self.shared
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((kind.to_owned(), fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global, so everything that installs one runs
    // in this single test (Rust runs tests in parallel threads).
    #[test]
    fn sink_lifecycle_events_spans_and_jsonl() {
        assert!(!enabled());
        // Null sink: macro must not evaluate its fields.
        let mut evaluated = false;
        obs_event!(
            "x",
            v = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated);

        let (sink, events) = VecSink::new();
        set_sink(Box::new(sink));
        assert!(enabled());
        obs_event!("k", a = 7u64, b = "s");
        {
            let mut sp = span("phase");
            sp.field("tag", 1u64);
        }
        clear_sink();
        assert!(!enabled());
        obs_event!("dropped");

        let events = events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, "k");
        assert_eq!(
            events[0].1,
            vec![
                ("a".to_owned(), Value::U64(7)),
                ("b".to_owned(), Value::Str("s".into()))
            ]
        );
        assert_eq!(events[1].0, "phase");
        assert_eq!(events[1].1[0], ("tag".to_owned(), Value::U64(1)));
        assert_eq!(events[1].1[1].0, "dur_us");

        // JSONL sink writes one valid object per event.
        let mut jsink = JsonlFileSink::new(Vec::new());
        jsink.event("k", &[("n", Value::U64(1)), ("s", Value::Str("x".into()))]);
        jsink.event("k2", &[]);
        let out = String::from_utf8(jsink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            assert!(json::is_valid(l), "{l}");
        }
        assert!(lines[0].contains(r#""kind":"k""#));
        assert!(lines[0].contains(r#""seq":0"#));
        assert!(lines[1].contains(r#""seq":1"#));
    }

    #[test]
    fn warn_once_fires_once() {
        static HITS: AtomicU64 = AtomicU64::new(0);
        for _ in 0..3 {
            // The Once is per call site; count via a side channel.
            obs_warn_once!("test warning (expected once in test output)");
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(HITS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn profiling_flag_round_trips() {
        assert!(!profiling_enabled());
        set_profiling(true);
        assert!(profiling_enabled());
        set_profiling(false);
        assert!(!profiling_enabled());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-3i32), Value::I64(-3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }
}
