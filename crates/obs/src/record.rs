//! The metrics registry: flat, versioned, hand-serialized JSON records.
//!
//! One [`Record`] is one JSONL line — a flat list of `(key, value)`
//! pairs opened by `record` (the record kind) and `schema_version`.
//! Producers build records by exhaustively destructuring their counter
//! structs (so a newly added counter that is not exported fails to
//! compile), and the golden-file test in `ule-bench` pins the exact key
//! set of every record kind.

use crate::json::JsonBuf;
use crate::Value;

/// Version of the flat metrics schema. Bump on any key rename/removal;
/// pure additions keep the version (consumers must ignore unknown
/// keys).
///
/// v2: `design_point.profile` entries carry the per-routine activity
/// counters and attributed energy, and are sorted (cycles descending,
/// then name) instead of address-ordered.
///
/// v3: `design_point` gains the `area_kge` objective, and the `ule-dse`
/// explorer journal adds the `frontier` and `dse_summary` record kinds.
///
/// v4: the `ule-serve` service layer adds the `serve_point`,
/// `serve_summary` and `serve_frontier` record kinds (batch size as a
/// design-space axis, throughput and energy-per-request metrics).
///
/// v5: virtual-time request observability — the `serve_latency`
/// (mergeable log-linear latency histogram, fleet + per-shard scopes)
/// and `sla_summary` (p99 × energy, queue depth, per-shard
/// utilization) record kinds, validated by `repro check --sla`.
pub const SCHEMA_VERSION: u64 = 5;

/// One flat metrics record (one JSONL line).
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// A record of the given kind, pre-populated with the `record` and
    /// `schema_version` fields.
    pub fn new(kind: &str) -> Self {
        let mut r = Record { fields: Vec::new() };
        r.push("record", kind);
        r.push("schema_version", SCHEMA_VERSION);
        r
    }

    /// Appends a field. Keys must be unique within a record (checked in
    /// debug builds).
    pub fn push(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        debug_assert!(
            !self.fields.iter().any(|(k, _)| k == key),
            "duplicate metrics key {key:?}"
        );
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// The keys, in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(k, _)| k.as_str())
    }

    /// Looks a field up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut b = JsonBuf::new();
        b.begin_object();
        for (k, v) in &self.fields {
            b.key(k);
            match v {
                Value::U64(n) => b.value_u64(*n),
                Value::I64(n) => b.value_i64(*n),
                Value::F64(n) => b.value_f64(*n),
                Value::Bool(x) => b.value_bool(*x),
                Value::Str(s) => b.value_str(s),
                Value::Raw(j) => b.value_raw(j),
            };
        }
        b.end_object();
        b.finish()
    }
}

/// An ordered collection of records, written out as JSONL.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    records: Vec<Record>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// The collected records, in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Writes every record as one JSON line.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for r in &self.records {
            writeln!(w, "{}", r.to_json())?;
        }
        Ok(())
    }

    /// The whole registry as a JSONL string.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid;

    #[test]
    fn record_serializes_flat_and_valid() {
        let mut r = Record::new("test");
        r.push("a", 1u64)
            .push("b", -2i64)
            .push("c", 1.25f64)
            .push("d", "x\"y")
            .push("e", true)
            .push("f", Value::Raw("[1,2]".into()));
        let j = r.to_json();
        assert!(is_valid(&j), "{j}");
        assert!(j.starts_with(r#"{"record":"test","schema_version":"#));
        assert_eq!(r.get("a"), Some(&Value::U64(1)));
        assert_eq!(r.keys().count(), 8);
    }

    #[test]
    fn registry_emits_one_line_per_record() {
        let mut reg = MetricsRegistry::new();
        reg.push(Record::new("a"));
        reg.push(Record::new("b"));
        let out = reg.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| is_valid(l)));
    }
}
