//! Flight recorder: an always-on bounded ring buffer of the last N
//! structured events per thread, dumped as validated JSONL when
//! something goes wrong — a panic (installed hook), a simulation that
//! hits its cycle budget, or an explicit request.
//!
//! The recorder is an [`EventSink`], so it plugs into the existing
//! event layer: installed via [`install`], it receives every
//! `obs_event!`/span emission at the same (lazy-field, one-branch)
//! cost as any other sink, keeps only the most recent
//! [`DEFAULT_CAPACITY`] lines per emitting thread, and optionally
//! chains to an inner sink (so `--trace <path>` still streams the full
//! log while the ring holds the post-mortem tail).
//!
//! A dump is a self-describing JSONL document:
//!
//! ```text
//! {"record":"flight_dump","schema_version":3,"reason":"panic","threads":2,"events":37,"dropped":410}
//! {"record":"flight_thread","thread":"main","recorded":25,"dropped":400,"wrapped":true}
//! {"record":"flight_thread","thread":"ThreadId(5)","recorded":12,"dropped":10,"wrapped":true}
//! {"seq":493,"t_us":88213,"thread":"main","kind":"sweep.job","job":"P-192/monte/sign", ...}
//! ...
//! ```
//!
//! Wrapping is never silent: each `flight_thread` line reports how many
//! events were evicted from that thread's ring (`dropped`, with
//! `wrapped` true once any eviction happened). [`validate_dump`] checks
//! the whole document — every consumer (tests, CI self-tests, triage
//! tooling) goes through it.

use crate::{json, EventSink, Value};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events). Sized so a dump covers
/// the last few batches of a sweep without holding a long run's whole
/// event stream.
pub const DEFAULT_CAPACITY: usize = 256;

/// One thread's bounded event ring.
#[derive(Default)]
struct ThreadRing {
    /// The retained lines, oldest first.
    events: VecDeque<String>,
    /// Events evicted to respect the capacity bound.
    dropped: u64,
}

/// Shared recorder state: the per-thread rings (keyed by thread label,
/// ordered for deterministic dumps) and the global sequence counter.
#[derive(Default)]
struct FlightState {
    threads: BTreeMap<String, ThreadRing>,
    seq: u64,
    capacity: usize,
}

impl FlightState {
    fn dump_into(&self, reason: &str, out: &mut String) {
        let events: u64 = self.threads.values().map(|t| t.events.len() as u64).sum();
        let dropped: u64 = self.threads.values().map(|t| t.dropped).sum();
        let mut b = json::JsonBuf::new();
        b.begin_object();
        b.key("record").value_str("flight_dump");
        b.key("schema_version")
            .value_u64(crate::record::SCHEMA_VERSION);
        b.key("reason").value_str(reason);
        b.key("threads").value_u64(self.threads.len() as u64);
        b.key("events").value_u64(events);
        b.key("dropped").value_u64(dropped);
        b.end_object();
        out.push_str(&b.finish());
        out.push('\n');
        for (name, ring) in &self.threads {
            let mut b = json::JsonBuf::new();
            b.begin_object();
            b.key("record").value_str("flight_thread");
            b.key("thread").value_str(name);
            b.key("recorded").value_u64(ring.events.len() as u64);
            b.key("dropped").value_u64(ring.dropped);
            b.key("wrapped").value_bool(ring.dropped > 0);
            b.end_object();
            out.push_str(&b.finish());
            out.push('\n');
        }
        for ring in self.threads.values() {
            for line in &ring.events {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
}

/// The flight-recorder [`EventSink`]: bounded per-thread rings plus an
/// optional chained inner sink that still sees every event.
pub struct FlightRecorder {
    state: Arc<Mutex<FlightState>>,
    epoch: Instant,
    inner: Option<Box<dyn EventSink>>,
}

impl FlightRecorder {
    /// A recorder with the given per-thread capacity, optionally
    /// wrapping an inner sink (e.g. the `--trace` JSONL file sink).
    /// Returns the recorder and a [`FlightHandle`] for dumping.
    pub fn new(capacity: usize, inner: Option<Box<dyn EventSink>>) -> (Self, FlightHandle) {
        assert!(capacity > 0, "flight-recorder capacity must be positive");
        let state = Arc::new(Mutex::new(FlightState {
            capacity,
            ..Default::default()
        }));
        let handle = FlightHandle {
            state: state.clone(),
        };
        (
            FlightRecorder {
                state,
                epoch: Instant::now(),
                inner,
            },
            handle,
        )
    }
}

impl EventSink for FlightRecorder {
    fn event(&mut self, kind: &str, fields: &[(&str, Value)]) {
        let thread = crate::current_thread_label();
        let t_us = self.epoch.elapsed().as_micros() as u64;
        {
            let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let seq = st.seq;
            st.seq += 1;
            let line = crate::event_line(seq, t_us, &thread, kind, fields);
            let capacity = st.capacity;
            let ring = st.threads.entry(thread).or_default();
            if ring.events.len() == capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back(line);
        }
        if let Some(inner) = self.inner.as_mut() {
            inner.event(kind, fields);
        }
    }

    fn flush(&mut self) {
        if let Some(inner) = self.inner.as_mut() {
            inner.flush();
        }
    }
}

/// A cloneable handle onto a recorder's rings, valid independently of
/// the sink's installation (the global registry holds one; tests can
/// hold their own).
#[derive(Clone)]
pub struct FlightHandle {
    state: Arc<Mutex<FlightState>>,
}

impl FlightHandle {
    /// Renders the current ring contents as a JSONL dump document.
    pub fn dump(&self, reason: &str) -> String {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::new();
        st.dump_into(reason, &mut out);
        out
    }

    /// Writes a dump document to `path` (truncating).
    pub fn dump_to(&self, path: &std::path::Path, reason: &str) -> std::io::Result<()> {
        std::fs::write(path, self.dump(reason))
    }

    /// Total events currently retained across all threads.
    pub fn retained(&self) -> usize {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.threads.values().map(|t| t.events.len()).sum()
    }

    /// The retained event lines (oldest first per thread) whose `kind`
    /// field equals `kind` — parsed consumers (e.g. the merged trace
    /// export) filter the ring without re-implementing the dump format.
    pub fn lines_of_kind(&self, kind: &str) -> Vec<String> {
        let needle = format!("\"kind\":{}", json::escape(kind));
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.threads
            .values()
            .flat_map(|t| t.events.iter())
            .filter(|l| l.contains(&needle))
            .cloned()
            .collect()
    }
}

/// Registry of the installed recorder's handle plus the armed auto-dump
/// path, reachable from the panic hook and incident sites.
static REGISTRY: Mutex<Option<(FlightHandle, Option<std::path::PathBuf>)>> = Mutex::new(None);

/// One-shot latch so a panicking process (or a run with repeated cycle
/// overruns) writes exactly one post-mortem; later incidents keep the
/// first dump, which holds the events closest to the original fault.
static DUMPED: AtomicBool = AtomicBool::new(false);

/// Builds a flight recorder (optionally chaining `inner`), installs it
/// as the process-global event sink, and registers its handle so
/// [`note_incident`] and the panic hook can reach it.
pub fn install(capacity: usize, inner: Option<Box<dyn EventSink>>) -> FlightHandle {
    let (recorder, handle) = FlightRecorder::new(capacity, inner);
    crate::set_sink(Box::new(recorder));
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let auto = reg.take().and_then(|(_, p)| p);
    *reg = Some((handle.clone(), auto));
    DUMPED.store(false, Ordering::SeqCst);
    handle
}

/// The installed recorder's handle, if one is registered.
pub fn handle() -> Option<FlightHandle> {
    REGISTRY
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(|(h, _)| h.clone())
}

/// Arms automatic dumping to `path` and installs a chained panic hook
/// (once per process): on panic, the ring is dumped to the armed path
/// before the previous hook runs. Also the destination for
/// [`note_incident`].
pub fn arm_auto_dump(path: std::path::PathBuf) {
    {
        let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        match reg.as_mut() {
            Some((_, auto)) => *auto = Some(path),
            None => *reg = Some((FlightHandle::default_detached(), Some(path))),
        }
    }
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_armed("panic");
            prev(info);
        }));
    });
}

impl FlightHandle {
    /// An empty, unregistered handle — placeholder when arming before
    /// install (its dump is a valid, empty document).
    fn default_detached() -> FlightHandle {
        FlightHandle {
            state: Arc::new(Mutex::new(FlightState {
                capacity: DEFAULT_CAPACITY,
                ..Default::default()
            })),
        }
    }
}

/// Records an incident (e.g. `"cycle_limit"`): dumps the ring to the
/// armed auto-dump path, at most once per process. No-op when no
/// recorder is installed or no path is armed.
pub fn note_incident(reason: &str) {
    dump_armed(reason);
}

fn dump_armed(reason: &str) {
    let target = {
        let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        match reg.as_ref() {
            Some((h, Some(p))) => Some((h.clone(), p.clone())),
            _ => None,
        }
    };
    if let Some((handle, path)) = target {
        if DUMPED.swap(true, Ordering::SeqCst) {
            return;
        }
        match handle.dump_to(&path, reason) {
            Ok(()) => eprintln!("flight recorder: dumped to {} ({reason})", path.display()),
            Err(e) => eprintln!("flight recorder: dump to {} failed: {e}", path.display()),
        }
    }
}

/// Statistics of a validated dump document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DumpStats {
    /// Threads that contributed a ring.
    pub threads: u64,
    /// Event lines in the dump.
    pub events: u64,
    /// Events evicted before the dump (across all threads).
    pub dropped: u64,
    /// Whether any thread's ring wrapped.
    pub wrapped: bool,
}

/// Validates a flight-recorder dump document: a `flight_dump` header,
/// one `flight_thread` line per thread, then the event lines — each a
/// valid JSON object with the canonical keys, with counts consistent
/// with the header. Returns the document's statistics.
pub fn validate_dump(doc: &str) -> Result<DumpStats, String> {
    let mut lines = doc.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty dump")?;
    let header = json::parse(first).ok_or("header is not valid JSON")?;
    if header.get("record").and_then(|v| v.as_str()) != Some("flight_dump") {
        return Err("first line is not a flight_dump header".into());
    }
    let want = |k: &str| {
        header
            .get(k)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("header lacks {k}"))
    };
    let stats = DumpStats {
        threads: want("threads")?,
        events: want("events")?,
        dropped: want("dropped")?,
        wrapped: false,
    };
    let mut seen = DumpStats::default();
    for (i, line) in lines {
        let v = json::parse(line).ok_or_else(|| format!("line {}: invalid JSON", i + 1))?;
        if v.get("record").and_then(|x| x.as_str()) == Some("flight_thread") {
            if seen.events > 0 {
                return Err(format!("line {}: thread meta after event lines", i + 1));
            }
            for k in ["recorded", "dropped"] {
                if v.get(k).and_then(|x| x.as_u64()).is_none() {
                    return Err(format!("line {}: flight_thread lacks {k}", i + 1));
                }
            }
            let wrapped = v
                .get("wrapped")
                .and_then(|x| x.as_bool())
                .ok_or_else(|| format!("line {}: flight_thread lacks wrapped", i + 1))?;
            seen.threads += 1;
            seen.dropped += v.get("dropped").and_then(|x| x.as_u64()).unwrap();
            seen.wrapped |= wrapped;
        } else {
            for k in ["seq", "t_us"] {
                if v.get(k).and_then(|x| x.as_u64()).is_none() {
                    return Err(format!("line {}: event lacks {k}", i + 1));
                }
            }
            for k in ["thread", "kind"] {
                if v.get(k).and_then(|x| x.as_str()).is_none() {
                    return Err(format!("line {}: event lacks {k}", i + 1));
                }
            }
            seen.events += 1;
        }
    }
    if seen.threads != stats.threads {
        return Err(format!(
            "header claims {} threads, found {}",
            stats.threads, seen.threads
        ));
    }
    if seen.events != stats.events {
        return Err(format!(
            "header claims {} events, found {}",
            stats.events, seen.events
        ));
    }
    if seen.dropped != stats.dropped {
        return Err(format!(
            "header claims {} dropped, thread lines sum to {}",
            stats.dropped, seen.dropped
        ));
    }
    Ok(DumpStats {
        wrapped: seen.wrapped,
        ..stats
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(rec: &mut FlightRecorder, n: usize) {
        for i in 0..n {
            rec.event("test.tick", &[("i", Value::U64(i as u64))]);
        }
    }

    #[test]
    fn ring_bounds_and_dump_validates() {
        let (mut rec, handle) = FlightRecorder::new(8, None);
        fill(&mut rec, 20);
        rec.event("test.done", &[("ok", Value::Bool(true))]);
        assert_eq!(handle.retained(), 8, "ring keeps the last 8");

        let doc = handle.dump("unit_test");
        let stats = validate_dump(&doc).expect("dump validates");
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.events, 8);
        assert_eq!(stats.dropped, 13);
        assert!(stats.wrapped, "eviction must be surfaced");
        // The newest event survived; the oldest did not.
        assert!(doc.contains("test.done"));
        assert!(!doc.contains("\"i\":0,"));
    }

    #[test]
    fn unwrapped_dump_reports_no_drops() {
        let (mut rec, handle) = FlightRecorder::new(8, None);
        fill(&mut rec, 3);
        let stats = validate_dump(&handle.dump("x")).unwrap();
        assert_eq!((stats.events, stats.dropped), (3, 0));
        assert!(!stats.wrapped);
    }

    #[test]
    fn chained_inner_sink_sees_every_event() {
        let (inner, events) = crate::VecSink::new();
        let (mut rec, handle) = FlightRecorder::new(2, Some(Box::new(inner)));
        fill(&mut rec, 5);
        assert_eq!(handle.retained(), 2, "ring is bounded");
        assert_eq!(events.lock().unwrap().len(), 5, "inner sink is not bounded");
    }

    #[test]
    fn lines_of_kind_filters() {
        let (mut rec, handle) = FlightRecorder::new(16, None);
        rec.event("sys.sim", &[("entry", Value::Str("main_sign".into()))]);
        rec.event("sweep.job", &[]);
        rec.event("sys.sim", &[("entry", Value::Str("main_verify".into()))]);
        let sims = handle.lines_of_kind("sys.sim");
        assert_eq!(sims.len(), 2);
        assert!(sims[0].contains("main_sign"));
        assert!(handle.lines_of_kind("nope").is_empty());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_dump("").is_err());
        assert!(validate_dump("{\"record\":\"other\"}").is_err());
        let (mut rec, handle) = FlightRecorder::new(4, None);
        fill(&mut rec, 2);
        let good = handle.dump("x");
        // Doctor the header's event count.
        let bad = good.replacen("\"events\":2", "\"events\":3", 1);
        assert!(validate_dump(&bad).unwrap_err().contains("claims 3 events"));
        // Truncate an event line mid-object.
        let cut = &good[..good.len() - 5];
        assert!(validate_dump(cut).is_err());
    }
}
