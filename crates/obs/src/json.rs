//! Hand-rolled JSON serialization and validation.
//!
//! The workspace builds fully offline with zero external dependencies,
//! so there is no serde here: [`JsonBuf`] writes objects/arrays by hand
//! with correct string escaping and number formatting, and
//! [`is_valid`] is a small recursive-descent checker used by the tests
//! and the `bench` binary to prove emitted lines actually parse.

use std::fmt::Write as _;

/// An append-only JSON buffer with explicit structure helpers.
///
/// The caller drives the structure (`begin_object`, `key`, `value_*`,
/// `end_object`, …); the buffer inserts commas automatically. Misuse
/// (e.g. a value with no key inside an object) is a caller bug, not a
/// runtime-checked condition — the output of every producer in this
/// workspace is covered by [`is_valid`]-based tests.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Whether a comma is needed before the next element at the current
    /// nesting level (one flag per open container).
    need_comma: Vec<bool>,
}

impl JsonBuf {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        JsonBuf::default()
    }

    /// The serialized JSON so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the buffer, returning the serialized JSON.
    pub fn finish(self) -> String {
        self.out
    }

    fn elem(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.elem();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    /// Closes an object (`}`).
    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.elem();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    /// Closes an array (`]`).
    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Writes an object key (including the `:`).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The upcoming value must not get a comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
        self
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.out, v);
        self
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) -> &mut Self {
        self.elem();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a signed integer value.
    pub fn value_i64(&mut self, v: i64) -> &mut Self {
        self.elem();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a float value (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn value_f64(&mut self, v: f64) -> &mut Self {
        self.elem();
        if v.is_finite() {
            // Rust's shortest-roundtrip float formatting is valid JSON
            // (digits, optional `-`/`.`/`e`).
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) -> &mut Self {
        self.elem();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes `null`.
    pub fn value_null(&mut self) -> &mut Self {
        self.elem();
        self.out.push_str("null");
        self
    }

    /// Splices a pre-serialized JSON fragment in as one value. The
    /// fragment must itself be valid JSON (producers assert this in
    /// debug builds).
    pub fn value_raw(&mut self, json: &str) -> &mut Self {
        debug_assert!(is_valid(json), "raw fragment is not valid JSON: {json}");
        self.elem();
        self.out.push_str(json);
        self
    }
}

/// Escapes and quotes `s` per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes and quotes a string as a standalone JSON value.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

// ---- validation -----------------------------------------------------

/// Returns true iff `s` is one complete, valid JSON value (with
/// optional surrounding whitespace). Used by tests and the CI smoke
/// path to prove every emitted JSONL line parses.
pub fn is_valid(s: &str) -> bool {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    if !p.value() {
        return false;
    }
    p.ws();
    p.i == p.b.len()
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, s: &str) -> bool {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn object(&mut self) -> bool {
        if !self.eat(b'{') {
            return false;
        }
        self.ws();
        if self.eat(b'}') {
            return true;
        }
        loop {
            self.ws();
            if !self.string() {
                return false;
            }
            self.ws();
            if !self.eat(b':') || !self.value() {
                return false;
            }
            self.ws();
            if self.eat(b',') {
                continue;
            }
            return self.eat(b'}');
        }
    }

    fn array(&mut self) -> bool {
        if !self.eat(b'[') {
            return false;
        }
        self.ws();
        if self.eat(b']') {
            return true;
        }
        loop {
            if !self.value() {
                return false;
            }
            self.ws();
            if self.eat(b',') {
                continue;
            }
            return self.eat(b']');
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return true,
                b'\\' => {
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return false,
                                }
                            }
                        }
                        _ => return false,
                    };
                }
                0x00..=0x1f => return false,
                _ => {}
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        self.eat(b'-');
        let digits_start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == digits_start {
            return false;
        }
        if self.eat(b'.') {
            let frac_start = self.i;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
            if self.i == frac_start {
                return false;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let exp_start = self.i;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
            if self.i == exp_start {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_escapes() {
        let mut b = JsonBuf::new();
        b.begin_object()
            .key("s")
            .value_str("a\"b\\c\nd\u{1}")
            .key("n")
            .value_u64(42)
            .key("f")
            .value_f64(1.5)
            .key("inf")
            .value_f64(f64::INFINITY)
            .key("t")
            .value_bool(true)
            .key("arr");
        b.begin_array().value_i64(-3).value_null().end_array();
        b.end_object();
        let s = b.finish();
        assert_eq!(
            s,
            r#"{"s":"a\"b\\c\nd\u0001","n":42,"f":1.5,"inf":null,"t":true,"arr":[-3,null]}"#
        );
        assert!(is_valid(&s));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"cÿ"}]}"#,
            " {\"x\": false}\n",
        ] {
            assert!(is_valid(good), "{good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(!is_valid(bad), "{bad}");
        }
    }

    #[test]
    fn float_formatting_round_trips() {
        let mut b = JsonBuf::new();
        b.value_f64(0.1);
        assert_eq!(b.as_str(), "0.1");
        let mut b = JsonBuf::new();
        b.value_f64(3.0);
        assert!(is_valid(b.as_str()));
    }
}
