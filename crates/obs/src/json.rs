//! Hand-rolled JSON serialization and validation.
//!
//! The workspace builds fully offline with zero external dependencies,
//! so there is no serde here: [`JsonBuf`] writes objects/arrays by hand
//! with correct string escaping and number formatting, and
//! [`is_valid`] is a small recursive-descent checker used by the tests
//! and the `bench` binary to prove emitted lines actually parse.

use std::fmt::Write as _;

/// An append-only JSON buffer with explicit structure helpers.
///
/// The caller drives the structure (`begin_object`, `key`, `value_*`,
/// `end_object`, …); the buffer inserts commas automatically. Misuse
/// (e.g. a value with no key inside an object) is a caller bug, not a
/// runtime-checked condition — the output of every producer in this
/// workspace is covered by [`is_valid`]-based tests.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Whether a comma is needed before the next element at the current
    /// nesting level (one flag per open container).
    need_comma: Vec<bool>,
}

impl JsonBuf {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        JsonBuf::default()
    }

    /// The serialized JSON so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the buffer, returning the serialized JSON.
    pub fn finish(self) -> String {
        self.out
    }

    fn elem(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.elem();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    /// Closes an object (`}`).
    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.elem();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    /// Closes an array (`]`).
    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Writes an object key (including the `:`).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The upcoming value must not get a comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
        self
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.out, v);
        self
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) -> &mut Self {
        self.elem();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a signed integer value.
    pub fn value_i64(&mut self, v: i64) -> &mut Self {
        self.elem();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a float value (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn value_f64(&mut self, v: f64) -> &mut Self {
        self.elem();
        if v.is_finite() {
            // Rust's shortest-roundtrip float formatting is valid JSON
            // (digits, optional `-`/`.`/`e`).
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) -> &mut Self {
        self.elem();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes `null`.
    pub fn value_null(&mut self) -> &mut Self {
        self.elem();
        self.out.push_str("null");
        self
    }

    /// Splices a pre-serialized JSON fragment in as one value. The
    /// fragment must itself be valid JSON (producers assert this in
    /// debug builds).
    pub fn value_raw(&mut self, json: &str) -> &mut Self {
        debug_assert!(is_valid(json), "raw fragment is not valid JSON: {json}");
        self.elem();
        self.out.push_str(json);
        self
    }
}

/// Escapes and quotes `s` per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes and quotes a string as a standalone JSON value.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

// ---- parsing and validation -----------------------------------------

/// A parsed JSON value. Integers that fit `u64`/`i64` keep full
/// precision (cycle counts exceed f64's 2^53 integer range in theory);
/// everything else becomes `F64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    U64(u64),
    /// A negative integer without fraction or exponent.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (integers widen lossily past 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value's object members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one complete JSON value (with optional surrounding
/// whitespace). `None` on any syntax error.
pub fn parse(s: &str) -> Option<Json> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
        depth: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    (p.i == p.b.len()).then_some(v)
}

/// Returns true iff `s` is one complete, valid JSON value (with
/// optional surrounding whitespace). Used by tests and the CI smoke
/// path to prove every emitted JSONL line parses.
pub fn is_valid(s: &str) -> bool {
    parse(s).is_some()
}

/// Maximum container nesting depth [`parse`] accepts. The recursive-
/// descent parser uses the call stack, so unbounded nesting in a
/// hostile document (e.g. `[[[[…`) would overflow it; every document
/// this workspace produces is a handful of levels deep.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, s: &str) -> bool {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true").then_some(Json::Bool(true)),
            Some(b'f') => self.lit("false").then_some(Json::Bool(false)),
            Some(b'n') => self.lit("null").then_some(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Json> {
        if !self.eat(b'{') {
            return None;
        }
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return None;
        }
        self.ws();
        let mut members = Vec::new();
        if self.eat(b'}') {
            self.depth -= 1;
            return Some(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if !self.eat(b':') {
                return None;
            }
            let val = self.value()?;
            members.push((key, val));
            self.ws();
            if self.eat(b',') {
                continue;
            }
            return self.eat(b'}').then(|| {
                self.depth -= 1;
                Json::Obj(members)
            });
        }
    }

    fn array(&mut self) -> Option<Json> {
        if !self.eat(b'[') {
            return None;
        }
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return None;
        }
        self.ws();
        let mut items = Vec::new();
        if self.eat(b']') {
            self.depth -= 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            if self.eat(b',') {
                continue;
            }
            return self.eat(b']').then(|| {
                self.depth -= 1;
                Json::Arr(items)
            });
        }
    }

    fn hex4(&mut self) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let h = self.peek()?;
            let d = (h as char).to_digit(16)?;
            v = (v << 4) | d;
            self.i += 1;
        }
        Some(v)
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        self.string_body()
    }

    /// The string content after the opening quote: raw byte runs are
    /// borrowed whole; escapes are decoded as they appear.
    fn string_body(&mut self) -> Option<String> {
        let mut out = String::new();
        let mut start = self.i;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).ok()?);
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).ok()?);
                    self.i += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            self.i += 1;
                            let u = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&u) {
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return None;
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return None;
                                }
                                0x10000 + ((u - 0xd800) << 10) + (lo - 0xdc00)
                            } else if (0xdc00..0xe000).contains(&u) {
                                return None;
                            } else {
                                u
                            };
                            out.push(char::from_u32(cp)?);
                            self.i -= 1;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                    start = self.i;
                }
                0x00..=0x1f => return None,
                _ => self.i += 1,
            }
        }
        None
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        let negative = self.eat(b'-');
        let digits_start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == digits_start {
            return None;
        }
        let mut integral = true;
        if self.eat(b'.') {
            integral = false;
            let frac_start = self.i;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
            if self.i == frac_start {
                return None;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let exp_start = self.i;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
            if self.i == exp_start {
                return None;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).ok()?;
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Some(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Some(Json::U64(v));
            }
        }
        text.parse::<f64>().ok().map(Json::F64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_escapes() {
        let mut b = JsonBuf::new();
        b.begin_object()
            .key("s")
            .value_str("a\"b\\c\nd\u{1}")
            .key("n")
            .value_u64(42)
            .key("f")
            .value_f64(1.5)
            .key("inf")
            .value_f64(f64::INFINITY)
            .key("t")
            .value_bool(true)
            .key("arr");
        b.begin_array().value_i64(-3).value_null().end_array();
        b.end_object();
        let s = b.finish();
        assert_eq!(
            s,
            r#"{"s":"a\"b\\c\nd\u0001","n":42,"f":1.5,"inf":null,"t":true,"arr":[-3,null]}"#
        );
        assert!(is_valid(&s));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"cÿ"}]}"#,
            " {\"x\": false}\n",
        ] {
            assert!(is_valid(good), "{good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(!is_valid(bad), "{bad}");
        }
    }

    #[test]
    fn parser_builds_values() {
        let v = parse(r#"{"a":[1,-2,2.5],"s":"x\nÿy","t":true,"n":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0], Json::U64(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1], Json::I64(-2));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2], Json::F64(2.5));
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "x\nÿy");
        assert_eq!(v.get("t").unwrap(), &Json::Bool(true));
        assert_eq!(v.get("n").unwrap(), &Json::Null);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parser_keeps_u64_precision() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // Too big for u64: falls back to f64.
        assert!(matches!(parse("18446744073709551616"), Some(Json::F64(_))));
    }

    #[test]
    fn parser_decodes_surrogate_pairs() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        assert_eq!(parse(r#""😀""#).unwrap().as_str().unwrap(), "😀");
        assert!(parse(r#""\ud83d""#).is_none(), "lone high surrogate");
        assert!(parse(r#""\ude00""#).is_none(), "lone low surrogate");
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let mut b = JsonBuf::new();
        b.begin_object()
            .key("s")
            .value_str("a\"b\\c\nd\u{1}")
            .key("n")
            .value_u64(u64::MAX)
            .key("f")
            .value_f64(-0.125);
        b.end_object();
        let v = parse(b.as_str()).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\nd\u{1}");
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-0.125));
    }

    #[test]
    fn float_formatting_round_trips() {
        let mut b = JsonBuf::new();
        b.value_f64(0.1);
        assert_eq!(b.as_str(), "0.1");
        let mut b = JsonBuf::new();
        b.value_f64(3.0);
        assert!(is_valid(b.as_str()));
    }
}
