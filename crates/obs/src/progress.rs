//! Live harness telemetry: a process-global progress reporter that
//! prints periodic heartbeat lines to stderr while a long campaign
//! (sweep batch, exploration, verification) runs.
//!
//! Instrumented engines call the cheap hooks ([`job_started`],
//! [`job_done`], [`memo_hit`], [`add_total`]); a background heartbeat
//! thread renders one line every ~2 s:
//!
//! ```text
//! repro all: 12/48 jobs, 3 memo hits | slowest in-flight P-521/baseline/sign_verify 14.2s | ETA 3m10s
//! ```
//!
//! The reporter is opt-in ([`start`] is called by the CLI behind
//! `--progress` or a TTY check) and all hooks are no-ops when inactive,
//! so library code can call them unconditionally. ETA comes from the
//! completed-job wall-clock history: observed throughput extrapolated
//! over the remaining job count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Heartbeat cadence.
const TICK: Duration = Duration::from_millis(2000);

struct State {
    label: String,
    started: Instant,
    /// Known job count (grows via [`add_total`]); 0 until first add.
    total: AtomicU64,
    done: AtomicU64,
    memo_hits: AtomicU64,
    /// Completed-job wall times, µs (the ETA history).
    walls: Mutex<Vec<u64>>,
    /// In-flight jobs: token -> (key, start).
    inflight: Mutex<BTreeMap<u64, (String, Instant)>>,
    next_token: AtomicU64,
    /// Heartbeat shutdown: flag + wakeup.
    stop: Mutex<bool>,
    cv: Condvar,
}

/// The installed reporter, if any. A `Mutex<Option<Arc>>` rather than a
/// `OnceLock` so a process can run several campaigns in sequence.
static ACTIVE: Mutex<Option<Arc<State>>> = Mutex::new(None);

fn active() -> Option<Arc<State>> {
    ACTIVE.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// True iff a reporter is running (hooks will record).
pub fn is_active() -> bool {
    active().is_some()
}

/// Whether stderr is a terminal — the CLI's autodetect default for
/// `--progress`.
pub fn stderr_is_tty() -> bool {
    use std::io::IsTerminal;
    std::io::stderr().is_terminal()
}

/// Starts the reporter (replacing any previous one) and spawns the
/// heartbeat thread. `label` prefixes every line (e.g. `"repro all"`).
///
/// Progress is telemetry, never correctness: if the heartbeat thread
/// cannot be spawned (thread limit, resource exhaustion), the reporter
/// is rolled back and the campaign runs without progress lines instead
/// of panicking.
pub fn start(label: &str) {
    let state = Arc::new(State {
        label: label.to_owned(),
        started: Instant::now(),
        total: AtomicU64::new(0),
        done: AtomicU64::new(0),
        memo_hits: AtomicU64::new(0),
        walls: Mutex::new(Vec::new()),
        inflight: Mutex::new(BTreeMap::new()),
        next_token: AtomicU64::new(1),
        stop: Mutex::new(false),
        cv: Condvar::new(),
    });
    {
        let mut a = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(old) = a.replace(state.clone()) {
            stop_state(&old);
        }
    }
    let hb = state.clone();
    let spawned = if ule_testkit::threads::spawn_blocked() {
        Err(std::io::Error::other("spawn blocked by test shim"))
    } else {
        std::thread::Builder::new()
            .name("progress-heartbeat".into())
            .spawn(move || heartbeat(hb))
    };
    if let Err(err) = spawned {
        crate::obs_warn_once!(
            "progress heartbeat thread could not be spawned; progress reporting disabled",
            error = err.to_string(),
        );
        // Uninstall the reporter we just published: without a heartbeat
        // nothing would ever render it, and hooks would record into a
        // state that never stops.
        let mut a = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
        if a.as_ref().is_some_and(|s| Arc::ptr_eq(s, &state)) {
            *a = None;
        }
    }
}

/// Stops the reporter (if running) and prints a final summary line.
pub fn finish() {
    let state = ACTIVE.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(state) = state {
        stop_state(&state);
        eprintln!("{}", render(&state, true));
    }
}

fn stop_state(state: &State) {
    *state.stop.lock().unwrap_or_else(|p| p.into_inner()) = true;
    state.cv.notify_all();
}

/// Adds `n` jobs to the known total (batches announce their size).
pub fn add_total(n: u64) {
    if let Some(s) = active() {
        s.total.fetch_add(n, Ordering::Relaxed);
    }
}

/// Records a memo hit (a job answered from cache).
pub fn memo_hit() {
    if let Some(s) = active() {
        s.memo_hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// Marks a job as in flight; pass the returned token to [`job_done`].
/// Token 0 means "no reporter" and is accepted by `job_done` as a
/// no-op, so callers need no conditional.
pub fn job_started(key: &str) -> u64 {
    match active() {
        Some(s) => {
            let token = s.next_token.fetch_add(1, Ordering::Relaxed);
            s.inflight
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(token, (key.to_owned(), Instant::now()));
            token
        }
        None => 0,
    }
}

/// Completes an in-flight job, feeding its wall time into the ETA
/// history.
pub fn job_done(token: u64) {
    if token == 0 {
        return;
    }
    if let Some(s) = active() {
        let entry = s
            .inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&token);
        if let Some((_, started)) = entry {
            s.walls
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(started.elapsed().as_micros() as u64);
        }
        s.done.fetch_add(1, Ordering::Relaxed);
    }
}

fn heartbeat(state: Arc<State>) {
    loop {
        let stopped = {
            let guard = state.stop.lock().unwrap_or_else(|p| p.into_inner());
            let (guard, _) = state
                .cv
                .wait_timeout(guard, TICK)
                .unwrap_or_else(|p| p.into_inner());
            *guard
        };
        if stopped {
            return;
        }
        eprintln!("{}", render(&state, false));
        emit_heartbeat(&state);
    }
}

fn fmt_duration(secs: u64) -> String {
    if secs >= 3600 {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    } else if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{secs}s")
    }
}

fn render(state: &State, final_line: bool) -> String {
    let done = state.done.load(Ordering::Relaxed);
    let total = state.total.load(Ordering::Relaxed);
    let memo = state.memo_hits.load(Ordering::Relaxed);
    let elapsed = state.started.elapsed();
    let mut line = if total > 0 {
        format!("{}: {done}/{total} jobs", state.label)
    } else {
        format!("{}: {done} jobs", state.label)
    };
    if memo > 0 {
        line.push_str(&format!(", {memo} memo hits"));
    }
    if final_line {
        line.push_str(&format!(" | done in {}", fmt_duration(elapsed.as_secs())));
        return line;
    }
    // Slowest in-flight job (the one most likely to be the holdup).
    // Elapsed is snapshotted exactly once per job under the lock: a
    // second `started.elapsed()` call could print a duration belonging
    // to a moment after the max was chosen (and the formatting below
    // stays outside the mutex).
    let slowest = {
        let inflight = state.inflight.lock().unwrap_or_else(|p| p.into_inner());
        inflight
            .values()
            .map(|(key, started)| (started.elapsed(), key.clone()))
            .max_by_key(|(elapsed, _)| *elapsed)
    };
    if let Some((elapsed, key)) = slowest {
        line.push_str(&format!(
            " | slowest in-flight {key} {:.1}s",
            elapsed.as_secs_f64()
        ));
    }
    // ETA: observed completion rate over the remaining count; omitted
    // entirely when there is no rate signal yet.
    if let Some(eta) = eta_seconds(total, done, memo, elapsed) {
        line.push_str(&format!(" | ETA {}", fmt_duration(eta)));
    }
    line
}

/// Extrapolates the remaining wall time from the observed completion
/// rate, or `None` when no honest estimate exists: the total is unknown
/// (0), nothing finished yet, everything already finished — or every
/// completion so far was a memo hit, whose ~0-cost walls would
/// extrapolate an "ETA 0s" for work that has not actually been timed.
fn eta_seconds(total: u64, done: u64, memo_hits: u64, elapsed: Duration) -> Option<u64> {
    if total == 0 || done == 0 || done >= total {
        return None;
    }
    let paid = done.saturating_sub(memo_hits);
    if paid == 0 {
        return None;
    }
    let per_job = elapsed.as_secs_f64() / paid as f64;
    Some((per_job * (total - done) as f64) as u64)
}

/// Emits one `progress.heartbeat` telemetry event mirroring the stderr
/// line; `eta_seconds` is JSON `null` while no estimate exists.
fn emit_heartbeat(state: &State) {
    if !crate::enabled() {
        return;
    }
    let done = state.done.load(Ordering::Relaxed);
    let total = state.total.load(Ordering::Relaxed);
    let memo = state.memo_hits.load(Ordering::Relaxed);
    let eta = match eta_seconds(total, done, memo, state.started.elapsed()) {
        Some(secs) => crate::Value::U64(secs),
        None => crate::Value::Raw("null".into()),
    };
    crate::emit(
        "progress.heartbeat",
        &[
            ("label", crate::Value::Str(state.label.clone())),
            ("jobs_done", crate::Value::U64(done)),
            ("jobs_total", crate::Value::U64(total)),
            ("memo_hits", crate::Value::U64(memo)),
            ("eta_seconds", eta),
        ],
    );
}

/// Returns the heartbeat line the reporter would print right now —
/// test and debugging support (`None` when inactive).
pub fn snapshot() -> Option<String> {
    active().map(|s| render(&s, false))
}

/// Process-wide guard used by tests to serialize progress sessions.
pub fn test_mutex() -> &'static Mutex<()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counts_and_renders() {
        let _g = test_mutex().lock().unwrap_or_else(|p| p.into_inner());
        assert!(!is_active());
        assert_eq!(job_started("x"), 0, "inactive hooks are no-ops");
        job_done(0);

        start("unit");
        assert!(is_active());
        add_total(4);
        memo_hit();
        let t1 = job_started("P-192/baseline/sign");
        let t2 = job_started("P-521/baseline/sign");
        assert_ne!(t1, 0);
        job_done(t1);
        // One completion, and it was the memo hit: no rate signal yet,
        // so the line must not hallucinate an ETA.
        let line = snapshot().unwrap();
        assert!(line.starts_with("unit: 1/4 jobs"), "{line}");
        assert!(line.contains("1 memo hits"), "{line}");
        assert!(
            line.contains("slowest in-flight P-521/baseline/sign"),
            "{line}"
        );
        assert!(!line.contains("ETA"), "{line}");
        // A second, genuinely timed completion unlocks the estimate.
        let t3 = job_started("P-256/baseline/sign");
        job_done(t3);
        let line = snapshot().unwrap();
        assert!(line.starts_with("unit: 2/4 jobs"), "{line}");
        assert!(line.contains("ETA"), "{line}");
        job_done(t2);
        finish();
        assert!(!is_active());
    }

    /// The ETA guard: no estimate without a total, without completions,
    /// after completion, or when every completion was a memo hit (whose
    /// ~0-cost walls would extrapolate a bogus "ETA 0s").
    #[test]
    fn eta_needs_a_rate_signal() {
        let minute = Duration::from_secs(60);
        assert_eq!(eta_seconds(0, 0, 0, minute), None, "unknown total");
        assert_eq!(eta_seconds(0, 3, 0, minute), None, "total never announced");
        assert_eq!(eta_seconds(8, 0, 0, minute), None, "nothing finished");
        assert_eq!(eta_seconds(8, 8, 0, minute), None, "already finished");
        assert_eq!(eta_seconds(8, 4, 4, minute), None, "memo hits only");
        // 60 s over 2 paid jobs -> 30 s/job -> 4 remaining -> 120 s.
        assert_eq!(eta_seconds(8, 4, 2, minute), Some(120));
    }

    /// A failed heartbeat spawn must disable progress (hooks become
    /// no-ops) instead of panicking, and a later `start` must recover.
    #[test]
    fn blocked_heartbeat_spawn_disables_progress() {
        let _g = test_mutex().lock().unwrap_or_else(|p| p.into_inner());
        assert!(!is_active());
        {
            let _shim = ule_testkit::threads::fail_next_spawns(1);
            start("blocked");
        }
        assert!(!is_active(), "reporter must be rolled back");
        assert_eq!(job_started("x"), 0, "hooks are no-ops after rollback");
        assert!(snapshot().is_none());
        finish(); // must be a no-op, not a panic

        // The shim budget is spent; progress recovers on the next start.
        start("recovered");
        assert!(is_active());
        finish();
        assert!(!is_active());
    }

    #[test]
    fn durations_format_humanely() {
        assert_eq!(fmt_duration(5), "5s");
        assert_eq!(fmt_duration(65), "1m05s");
        assert_eq!(fmt_duration(3700), "1h01m");
    }
}
