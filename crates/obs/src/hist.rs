//! Mergeable log-linear latency histograms (HDR-histogram style).
//!
//! [`LatencyHist`] counts `u64` samples (simulated cycles, wall µs —
//! any non-negative integer magnitude) into buckets whose boundaries
//! are a pure function of the value: below [`LatencyHist::SUB_BUCKETS`]
//! every value has its own bucket; above, each power-of-two octave is
//! split into `SUB_BUCKETS` equal sub-buckets, so the relative bucket
//! width — and therefore the worst-case quantile error — is bounded by
//! `1 / SUB_BUCKETS` (≈3.1%). There is no configuration, no dynamic
//! range parameter, and no float anywhere in the data path, so two
//! histograms built anywhere (different shards, different runs,
//! different machines) are always structurally compatible:
//! [`LatencyHist::merge`] is exact bucket-wise addition, associative
//! and commutative, which lets per-shard histograms combine into fleet
//! totals independent of shard count or thread schedule.
//!
//! Percentile queries are *exact-count*: `percentile(p)` finds the
//! smallest bucket whose cumulative count reaches `ceil(p/100 · n)`
//! and returns that bucket's lower bound — a value `v` with
//! `v ≤ true p-quantile < v · (1 + 1/SUB_BUCKETS)`.
//!
//! Serialization is a sparse `[[index,count],...]` array through the
//! repository's hand-rolled [`JsonBuf`], sized by occupancy rather
//! than by range.

use crate::json::JsonBuf;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS`
/// buckets (values below `2^SUB_BITS` are counted exactly).
pub const SUB_BITS: u32 = 5;

/// Highest bucket index any `u64` value can map to.
const MAX_INDEX: usize = ((64 - SUB_BITS as usize + 1) * (1 << SUB_BITS)) - 1;

/// A mergeable log-linear histogram of `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHist {
    /// Dense bucket counts, trimmed to the highest occupied index.
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    /// Exact extrema (`min` is meaningless while `total == 0`).
    min: u64,
    max: u64,
}

/// Number of sub-buckets per octave (`2^SUB_BITS`).
const SUB: u64 = 1 << SUB_BITS;

/// Bucket index of a value — deterministic, total over `u64`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let octave = (h - SUB_BITS + 1) as u64;
    (octave * SUB + ((v >> (h - SUB_BITS)) - SUB)) as usize
}

/// Lower bound of a bucket — the value `percentile` reports; the
/// bucket covers `[lower_bound, lower_bound + width)` where
/// `width = max(1, lower_bound / SUB)`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let octave = index >> SUB_BITS;
    let sub = index & (SUB - 1);
    (SUB + sub) << (octave - 1)
}

impl LatencyHist {
    /// Number of exact (width-1) buckets at the bottom of the range.
    pub const SUB_BUCKETS: u64 = SUB;

    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += n;
        self.sum += v as u128 * n as u128;
    }

    /// Adds every bucket of `other` into `self` — exact, associative
    /// and commutative (shard histograms merge into the same fleet
    /// histogram in any order).
    pub fn merge(&mut self, other: &LatencyHist) {
        if other.total == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact-count percentile: the lower bound of the smallest bucket
    /// whose cumulative count reaches `ceil(p/100 · count)` (clamped to
    /// at least one sample). Returns 0 for an empty histogram. The
    /// returned value `v` under-approximates the true quantile by at
    /// most one bucket width: `v ≤ q_p < v · (1 + 1/SUB_BUCKETS)`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(idx);
            }
        }
        // Unreachable while counts/total agree; fall back to max.
        self.max
    }

    /// Occupied buckets as `(index, count)` pairs, index-ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Sparse JSON form: `[[index,count],...]`, index-ascending.
    pub fn buckets_json(&self) -> String {
        let mut buf = JsonBuf::new();
        buf.begin_array();
        for (idx, c) in self.nonzero_buckets() {
            buf.begin_array()
                .value_u64(idx as u64)
                .value_u64(c)
                .end_array();
        }
        buf.end_array();
        buf.finish()
    }

    /// Rebuilds a histogram from sparse `(index, count)` pairs, as
    /// serialized by [`Self::buckets_json`] — the consumer-side inverse
    /// used by the `repro check --sla` validator. `min`/`max`/`sum` are
    /// reconstructed from bucket lower bounds (exact for width-1
    /// buckets, bucket-floor otherwise), so percentile queries —
    /// defined on bucket lower bounds — round-trip exactly.
    /// Returns `None` on an out-of-range index.
    pub fn from_sparse(pairs: &[(u64, u64)]) -> Option<Self> {
        let mut h = LatencyHist::new();
        for &(idx, c) in pairs {
            if idx as usize > MAX_INDEX {
                return None;
            }
            h.record_n(bucket_lower_bound(idx as usize), c);
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — the repository's stock deterministic generator.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn indexing_is_monotone_and_inverts_to_the_bucket_floor() {
        let mut prev = 0usize;
        for v in 0u64..4096 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone at {v}");
            prev = idx;
            let lo = bucket_lower_bound(idx);
            assert!(lo <= v, "lower bound {lo} must not exceed {v}");
            assert_eq!(bucket_index(lo), idx, "floor stays in its bucket");
        }
        // Exact range: one value per bucket below SUB.
        for v in 0..SUB {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
        // Relative error bound: width / lower <= 1/SUB.
        for shift in SUB_BITS..63 {
            let v = (1u64 << shift) + (1 << (shift - 1)); // mid-octave
            let idx = bucket_index(v);
            let lo = bucket_lower_bound(idx);
            let width = bucket_lower_bound(idx + 1) - lo;
            assert!(
                width as f64 / lo as f64 <= 1.0 / SUB as f64 + 1e-12,
                "bucket at {v}: width {width}, lower {lo}"
            );
        }
        assert_eq!(bucket_index(u64::MAX), MAX_INDEX);
    }

    #[test]
    fn records_count_sum_and_extrema() {
        let mut h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), None);
        h.record(7);
        assert_eq!((h.count(), h.min(), h.max()), (1, Some(7), Some(7)));
        // Single sample: every percentile is that sample's bucket.
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 7);
        }
        h.record_n(100, 3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 307);
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 76.75).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut rng = 0x1157u64;
        let mut parts: Vec<LatencyHist> = Vec::new();
        for _ in 0..4 {
            let mut h = LatencyHist::new();
            for _ in 0..200 {
                let magnitude = splitmix64(&mut rng) % 40; // spread octaves
                h.record(splitmix64(&mut rng) >> magnitude.min(63));
            }
            parts.push(h);
        }
        // Left fold vs right fold vs shuffled fold: identical.
        let fold = |order: &[usize]| {
            let mut acc = LatencyHist::new();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let a = fold(&[0, 1, 2, 3]);
        let b = fold(&[3, 2, 1, 0]);
        let c = fold(&[2, 0, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        // (p0+p1)+(p2+p3) == ((p0+p1)+p2)+p3.
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        let mut right = parts[2].clone();
        right.merge(&parts[3]);
        let mut pairwise = left.clone();
        pairwise.merge(&right);
        assert_eq!(pairwise, a);
        // Merging an empty histogram is the identity.
        let mut with_empty = a.clone();
        with_empty.merge(&LatencyHist::new());
        assert_eq!(with_empty, a);
    }

    #[test]
    fn percentiles_bound_the_true_quantile_from_below() {
        let mut rng = 0xabcdu64;
        let mut values: Vec<u64> = (0..500).map(|_| splitmix64(&mut rng) % 1_000_000).collect();
        let mut h = LatencyHist::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
            let true_q = values[rank.clamp(1, values.len()) - 1];
            let got = h.percentile(p);
            assert!(
                got <= true_q,
                "p{p}: histogram answer {got} must lower-bound {true_q}"
            );
            // ...and by no more than one bucket: the true quantile lies
            // inside the reported bucket.
            assert_eq!(
                bucket_index(got),
                bucket_index(true_q),
                "p{p}: {true_q} must fall in the reported bucket of {got}"
            );
            assert!(h.percentile(p) <= h.max().unwrap());
        }
        assert!(h.percentile(50.0) <= h.percentile(95.0));
        assert!(h.percentile(95.0) <= h.percentile(99.0));
        assert!(h.percentile(99.0) <= h.percentile(99.9));
    }

    #[test]
    fn sparse_json_round_trips_through_from_sparse() {
        let mut h = LatencyHist::new();
        for v in [0, 1, 31, 32, 33, 1000, 1 << 40] {
            h.record_n(v, 2);
        }
        let json = h.buckets_json();
        assert!(crate::json::is_valid(&json), "{json}");
        let doc = crate::json::parse(&json).unwrap();
        let pairs: Vec<(u64, u64)> = doc
            .as_array()
            .unwrap()
            .iter()
            .map(|pair| {
                let a = pair.as_array().unwrap();
                (a[0].as_u64().unwrap(), a[1].as_u64().unwrap())
            })
            .collect();
        let back = LatencyHist::from_sparse(&pairs).unwrap();
        assert_eq!(back.count(), h.count());
        for p in [50.0, 95.0, 99.0, 99.9] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
        assert_eq!(back.buckets_json(), json);
        assert!(LatencyHist::from_sparse(&[(u64::MAX, 1)]).is_none());
    }
}
