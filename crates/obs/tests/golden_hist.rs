//! Golden-file pin of a serialized histogram record.
//!
//! A seeded `LatencyHist` is rendered into a `Record` (the same
//! field layout `ule-serve`'s `serve_latency` records use) and the
//! exact JSONL line is pinned. Any drift in bucket boundaries, the
//! percentile rank rule, or the sparse serialization shows up as a
//! byte diff here. Regenerate with `ULE_UPDATE_GOLDEN=1 cargo test
//! -p ule-obs --test golden_hist`.

use ule_obs::hist::LatencyHist;
use ule_obs::json::is_valid;
use ule_obs::record::Record;
use ule_obs::Value;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn seeded_histogram_record_matches_golden() {
    let mut h = LatencyHist::new();
    let mut rng = 0x1a7e_c0de_u64;
    for _ in 0..300 {
        // Latency-shaped values: a busy body around 10^4–10^6 with a
        // long tail, spanning several octaves.
        let octave = splitmix64(&mut rng) % 24;
        h.record(1_000 + (splitmix64(&mut rng) & ((1 << (octave + 10)) - 1)));
    }
    let mut r = Record::new("latency_hist_golden");
    r.push("count", h.count())
        .push("min_cycles", h.min().unwrap_or(0))
        .push("max_cycles", h.max().unwrap_or(0))
        .push("sum_cycles", u64::try_from(h.sum()).unwrap_or(u64::MAX))
        .push("mean_cycles", h.mean())
        .push("p50_cycles", h.percentile(50.0))
        .push("p95_cycles", h.percentile(95.0))
        .push("p99_cycles", h.percentile(99.0))
        .push("p999_cycles", h.percentile(99.9))
        .push("hist_sub_bits", u64::from(ule_obs::hist::SUB_BITS))
        .push("hist_buckets", Value::Raw(h.buckets_json()));
    let line = r.to_json();
    assert!(is_valid(&line), "{line}");

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/latency_hist.jsonl");
    let actual = format!("{line}\n");
    if std::env::var_os("ULE_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("golden histogram record (regenerate with ULE_UPDATE_GOLDEN=1)");
    assert_eq!(
        actual, expected,
        "histogram serialization drifted: bucket scheme, percentile \
         rule or record layout changed — if intentional, regenerate \
         with ULE_UPDATE_GOLDEN=1 cargo test -p ule-obs --test golden_hist"
    );
}
