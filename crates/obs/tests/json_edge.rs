//! Edge-case coverage for the hand-rolled JSON layer: non-finite
//! floats, control-character escaping, nesting depth, and validator
//! round-trips over real flight-recorder dumps.

use ule_obs::flight::{validate_dump, FlightRecorder};
use ule_obs::json::{self, Json, JsonBuf};
use ule_obs::{EventSink, Value};

#[test]
fn non_finite_floats_serialize_as_null_and_round_trip() {
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut b = JsonBuf::new();
        b.begin_object();
        b.key("x").value_f64(v);
        b.end_object();
        let s = b.finish();
        assert_eq!(s, r#"{"x":null}"#, "{v} must degrade to null");
        assert_eq!(json::parse(&s).unwrap().get("x"), Some(&Json::Null));
    }
    // Finite extremes survive exactly.
    for v in [f64::MIN, f64::MAX, f64::MIN_POSITIVE] {
        let mut b = JsonBuf::new();
        b.begin_array();
        b.value_f64(v);
        b.end_array();
        let parsed = json::parse(&b.finish()).unwrap();
        let back = parsed.as_array().unwrap()[0].as_f64().unwrap();
        assert_eq!(back.to_bits(), v.to_bits(), "{v} must round-trip");
    }
    // Negative zero folds to an integer zero on the way back (the
    // parser prefers integer representations); the value survives even
    // though the sign bit does not.
    let mut b = JsonBuf::new();
    b.begin_array();
    b.value_f64(-0.0);
    b.end_array();
    let parsed = json::parse(&b.finish()).unwrap();
    assert_eq!(parsed.as_array().unwrap()[0].as_f64(), Some(0.0));
}

#[test]
fn every_control_character_is_escaped_and_recovered() {
    // RFC 8259: all of U+0000..U+001F must be escaped in strings.
    let s: String = (0u8..0x20).map(char::from).collect();
    let mut b = JsonBuf::new();
    b.value_str(&s);
    let ser = b.finish();
    // No raw control byte may appear in the serialized form.
    assert!(
        ser.bytes().all(|c| c >= 0x20),
        "raw control byte leaked: {ser:?}"
    );
    // The common escapes use their short forms.
    for short in ["\\n", "\\r", "\\t"] {
        assert!(ser.contains(short), "{short} missing in {ser:?}");
    }
    match json::parse(&ser).unwrap() {
        Json::Str(back) => assert_eq!(back, s),
        other => panic!("expected string, got {other:?}"),
    }
    // And embedded in an event line via the sink path.
    let line = {
        let (mut rec, handle) = FlightRecorder::new(4, None);
        rec.event("edge", &[("payload", Value::Str(s.clone()))]);
        handle.dump("test")
    };
    for l in line.lines() {
        assert!(json::is_valid(l), "{l:?}");
    }
}

#[test]
fn nesting_up_to_the_cap_parses_and_beyond_is_rejected() {
    let nest = |depth: usize| {
        let mut s = String::new();
        for _ in 0..depth {
            s.push('[');
        }
        s.push('1');
        for _ in 0..depth {
            s.push(']');
        }
        s
    };
    assert!(json::parse(&nest(json::MAX_DEPTH)).is_some());
    assert!(
        json::parse(&nest(json::MAX_DEPTH + 1)).is_none(),
        "past the cap must be rejected, not overflow the stack"
    );
    // A pathological depth must fail cleanly long before the real
    // call stack is at risk.
    assert!(json::parse(&nest(100_000)).is_none());
    // Mixed object/array nesting counts against the same budget.
    let mut deep = String::new();
    for _ in 0..json::MAX_DEPTH {
        deep.push_str("{\"a\":[");
    }
    deep.push('0');
    for _ in 0..json::MAX_DEPTH {
        deep.push_str("]}");
    }
    assert!(json::parse(&deep).is_none(), "2x the cap must be rejected");
}

#[test]
fn flight_dump_round_trips_through_parse_and_validate() {
    let (mut rec, handle) = FlightRecorder::new(3, None);
    // Filler first so the ring wraps, then the awkward events (quotes,
    // newlines, non-finite floats, negative numbers, raw fragments)
    // land in the retained tail.
    for i in 0..5u64 {
        rec.event("edge.fill", &[("i", Value::U64(i))]);
    }
    rec.event(
        "edge.one",
        &[
            ("msg", Value::Str("say \"hi\"\nplease".into())),
            ("bad", Value::F64(f64::NAN)),
            ("neg", Value::I64(-42)),
        ],
    );
    rec.event("edge.two", &[("frag", Value::Raw("[1,2,3]".into()))]);
    let doc = handle.dump("round_trip");
    let stats = validate_dump(&doc).expect("dump validates");
    assert_eq!(stats.events, 3, "capacity 3 keeps the last 3");
    assert_eq!(stats.dropped, 4);
    assert!(stats.wrapped);
    // Every line independently parses, and the awkward values the
    // events carried come back intact through the full sink ->
    // serialize -> parse round trip.
    let parsed: Vec<Json> = doc.lines().map(|l| json::parse(l).unwrap()).collect();
    let one = parsed
        .iter()
        .find(|v| v.get("kind").and_then(|k| k.as_str()) == Some("edge.one"))
        .expect("edge.one retained");
    assert_eq!(
        one.get("msg").and_then(|v| v.as_str()),
        Some("say \"hi\"\nplease")
    );
    assert_eq!(one.get("bad"), Some(&Json::Null), "NaN degrades to null");
    assert_eq!(
        one.get("neg").map(|v| matches!(v, Json::I64(-42))),
        Some(true)
    );
    let two = parsed
        .iter()
        .find(|v| v.get("kind").and_then(|k| k.as_str()) == Some("edge.two"))
        .expect("edge.two retained");
    let frag = two.get("frag").and_then(|v| v.as_array()).unwrap();
    assert_eq!(frag.len(), 3, "raw fragment spliced as a real array");
}
