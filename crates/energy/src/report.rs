//! Turning run activity into the per-component energy breakdowns of
//! Figs 7.2/7.3/7.9 and the power split of Fig 7.10.

use crate::constants::*;
use crate::logic;
use crate::mem;
use std::fmt;

/// The stacked-bar components of the paper's breakdown figures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Component {
    /// The processor core ("Pete", incl. the Hi/Lo multiplier).
    PeteCore,
    /// The 256 KB program ROM.
    Rom,
    /// The 16 KB data RAM.
    Ram,
    /// Instruction cache + ROM controller + buffers (§7.1's "uncore").
    Uncore,
    /// The Monte accelerator.
    Monte,
    /// The Billie accelerator.
    Billie,
}

impl Component {
    /// Display name matching the figures.
    pub fn name(self) -> &'static str {
        match self {
            Component::PeteCore => "Pete core",
            Component::Rom => "ROM",
            Component::Ram => "RAM",
            Component::Uncore => "Uncore",
            Component::Monte => "Monte",
            Component::Billie => "Billie",
        }
    }

    /// Stable snake_case identifier for machine-readable output (the
    /// metrics schema pins these — renaming is a schema change).
    pub fn key(self) -> &'static str {
        match self {
            Component::PeteCore => "pete_core",
            Component::Rom => "rom",
            Component::Ram => "ram",
            Component::Uncore => "uncore",
            Component::Monte => "monte",
            Component::Billie => "billie",
        }
    }
}

/// Instruction-cache activity for the energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IcacheActivity {
    /// Cache capacity in bytes.
    pub size_bytes: u32,
    /// Processor-side accesses (tag + data arrays).
    pub accesses: u64,
    /// Line fills written into the data array.
    pub fills: u64,
}

/// Which accelerator is attached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopKind {
    /// Monte (§5.4).
    Monte,
    /// Billie for GF(2^m) (§5.5).
    Billie {
        /// The field degree (Billie's power scales with it).
        m: usize,
    },
}

/// Idle-accelerator gating strategy — the paper's stated future work
/// (§8: "we plan on modeling our system such that we can turn off Billie
/// when she is not in use"; §7.4: "our system could still benefit
/// substantially from power and clock gating techniques").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Gating {
    /// The study's design point: the accelerator clock keeps running
    /// while idle.
    #[default]
    None,
    /// Clock gating: idle dynamic power eliminated; leakage remains.
    Clock,
    /// Power gating: idle dynamic *and* static power eliminated (the
    /// paper notes leakage insight in §7.9: "how much power will be
    /// consumed if power gating is not utilized while the FFAU is
    /// idle").
    Power,
}

/// Accelerator activity for the energy model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CopActivity {
    /// Which accelerator.
    pub kind: CopKind,
    /// Cycles its arithmetic was computing.
    pub busy_cycles: u64,
    /// Cycles its DMA / LSU moved data.
    pub dma_cycles: u64,
    /// Scratchpad accesses (Monte's AB/T memories).
    pub scratch_accesses: u64,
    /// Idle-cycle gating strategy (§8 extension).
    pub gating: Gating,
    /// Billie register-file technology (§8 extension; ignored for
    /// Monte).
    pub sram_register_file: bool,
}

/// Event counts of one simulated run — everything the energy model needs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Activity {
    /// Total clock cycles.
    pub cycles: u64,
    /// Cycles Pete was issuing (cycles - stalls).
    pub busy_cycles: u64,
    /// Cycles Pete was stalled.
    pub stall_cycles: u64,
    /// Cycles the Hi/Lo multiplier was active.
    pub mult_active_cycles: u64,
    /// §7.8 multiplier-variant power factor (1.0 = Karatsuba).
    pub mult_variant_factor: f64,
    /// 32-bit ROM reads (instruction + data buses).
    pub rom_word_reads: u64,
    /// 128-bit ROM line reads (cache fills/prefetches).
    pub rom_line_reads: u64,
    /// RAM word reads (both ports).
    pub ram_reads: u64,
    /// RAM word writes (both ports).
    pub ram_writes: u64,
    /// Instruction cache, if configured.
    pub icache: Option<IcacheActivity>,
    /// Accelerator, if attached.
    pub cop: Option<CopActivity>,
}

impl Activity {
    /// Wall-clock time of the run, seconds.
    pub fn time_s(&self) -> f64 {
        self.cycles as f64 * CLOCK_NS * 1e-9
    }
}

/// Energy broken down by component, each split static/dynamic (J).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    entries: Vec<(Component, f64, f64)>,
    time_s: f64,
}

impl EnergyBreakdown {
    /// Total energy, µJ.
    pub fn total_uj(&self) -> f64 {
        self.entries.iter().map(|(_, d, s)| d + s).sum::<f64>() * 1e6
    }

    /// One component's energy (dynamic + static), µJ.
    pub fn component_uj(&self, c: Component) -> f64 {
        self.entries
            .iter()
            .filter(|(k, _, _)| *k == c)
            .map(|(_, d, s)| d + s)
            .sum::<f64>()
            * 1e6
    }

    /// The raw per-component entries, `(component, dynamic_j, static_j)`,
    /// in display order — the full-precision data behind
    /// [`components`](Self::components), exported to the metrics layer.
    pub fn entries(&self) -> &[(Component, f64, f64)] {
        &self.entries
    }

    /// All components with nonzero energy, µJ, in display order.
    pub fn components(&self) -> Vec<(Component, f64)> {
        self.entries
            .iter()
            .map(|(k, d, s)| (*k, (d + s) * 1e6))
            .collect()
    }

    /// Average power over the run: `(dynamic_mw, static_mw)` — the two
    /// stacks of Fig 7.10.
    pub fn power_mw(&self) -> (f64, f64) {
        let dynamic: f64 = self.entries.iter().map(|(_, d, _)| d).sum();
        let stat: f64 = self.entries.iter().map(|(_, _, s)| s).sum();
        (dynamic / self.time_s * 1e3, stat / self.time_s * 1e3)
    }

    /// Static share of total energy (§7.4: ≈8.5 %).
    pub fn static_fraction(&self) -> f64 {
        let stat: f64 = self.entries.iter().map(|(_, _, s)| s).sum();
        let total: f64 = self.entries.iter().map(|(_, d, s)| d + s).sum();
        stat / total
    }
}

/// One routine's activity, as the attribution model consumes it —
/// the cycle and counter slice a profiler accumulated for that routine
/// (or call path). Decoupled from the simulator's types so `ule-energy`
/// stays dependency-free; `ule-core` converts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoutineActivity {
    /// Routine (or call-path) name; carried through to the output.
    pub name: String,
    /// Cycles attributed to the routine (exclusive).
    pub cycles: u64,
    /// Retired instructions attributed to the routine.
    pub instructions: u64,
    /// ROM word reads (uncached fetches + data reads).
    pub rom_reads: u64,
    /// ROM line reads (I-cache fills/prefetches).
    pub rom_line_reads: u64,
    /// RAM reads (Pete's port + accelerator DMA).
    pub ram_reads: u64,
    /// RAM writes (Pete's port + accelerator DMA).
    pub ram_writes: u64,
    /// Instruction-cache lookups.
    pub icache_accesses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Coprocessor multiply/square operations started.
    pub cop_mul_ops: u64,
    /// Coprocessor load/store commands executed.
    pub cop_ls_ops: u64,
}

/// One routine's attributed share of a run's energy.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutineEnergy {
    /// Routine (or call-path) name.
    pub name: String,
    /// Per-component share, µJ, in the breakdown's display order.
    pub components: Vec<(Component, f64)>,
    /// Total share, µJ. Carried explicitly (not recomputed from
    /// `components`) so the conservation fix-up can land here: summing
    /// this field over all routines reproduces
    /// [`EnergyBreakdown::total_uj`] bit-exactly.
    pub total_uj: f64,
}

/// The per-routine energy attribution of one run — the paper's
/// per-field-routine tables, derived from a single profiled simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoutineEnergyAttribution {
    /// One entry per input routine, in input order.
    pub routines: Vec<RoutineEnergy>,
}

impl RoutineEnergyAttribution {
    /// Sum of the attributed totals, µJ (bit-equal to the headline
    /// [`EnergyBreakdown::total_uj`] — the conservation invariant).
    pub fn total_uj(&self) -> f64 {
        self.routines.iter().map(|r| r.total_uj).sum()
    }

    /// The entry for `name`, if present.
    pub fn routine(&self, name: &str) -> Option<&RoutineEnergy> {
        self.routines.iter().find(|r| r.name == name)
    }
}

/// Splits `total_uj` over the routines proportionally to `weights`,
/// falling back to `fallback` (cycles) when the weights carry no
/// information, and to the first routine as a last resort.
fn split_uj(total_uj: f64, weights: &[f64], fallback: &[f64]) -> Vec<f64> {
    let mut w = weights;
    let mut sum: f64 = w.iter().sum();
    if sum <= 0.0 {
        w = fallback;
        sum = w.iter().sum();
    }
    if sum > 0.0 {
        w.iter().map(|x| total_uj * (x / sum)).collect()
    } else {
        let mut v = vec![0.0; w.len()];
        v[0] = total_uj;
        v
    }
}

impl EnergyBreakdown {
    /// Attributes this breakdown over per-routine activity slices: each
    /// component's dynamic energy is split in proportion to the counters
    /// that *drive* that component (ROM energy by pJ-weighted ROM
    /// traffic, RAM by accesses, uncore by I$ activity, accelerators by
    /// datapath + DMA operations, core logic by exclusive cycles), and
    /// every static share is split by cycles (leakage is time). A
    /// residual fix-up then pins the **conservation invariant**: the
    /// attributed totals sum bit-exactly to [`total_uj`](Self::total_uj).
    pub fn attribute(&self, routines: &[RoutineActivity]) -> RoutineEnergyAttribution {
        assert!(
            !routines.is_empty(),
            "attribute() needs at least one routine"
        );
        let cycles: Vec<f64> = routines.iter().map(|r| r.cycles as f64).collect();
        let rom_cap = 256 * 1024;
        let mut out: Vec<RoutineEnergy> = routines
            .iter()
            .map(|r| RoutineEnergy {
                name: r.name.clone(),
                components: Vec::with_capacity(self.entries.len()),
                total_uj: 0.0,
            })
            .collect();
        for &(c, d, s) in &self.entries {
            let weights: Vec<f64> = match c {
                Component::PeteCore => cycles.clone(),
                Component::Rom => routines
                    .iter()
                    .map(|r| {
                        r.rom_reads as f64 * mem::sram_access_pj(rom_cap)
                            + r.rom_line_reads as f64 * mem::sram_line_access_pj(rom_cap)
                    })
                    .collect(),
                Component::Ram => routines
                    .iter()
                    .map(|r| (r.ram_reads + r.ram_writes) as f64)
                    .collect(),
                Component::Uncore => routines
                    .iter()
                    .map(|r| (r.icache_accesses + r.icache_misses) as f64)
                    .collect(),
                Component::Monte | Component::Billie => routines
                    .iter()
                    .map(|r| (r.cop_mul_ops + r.cop_ls_ops) as f64)
                    .collect(),
            };
            let dyn_shares = split_uj(d * 1e6, &weights, &cycles);
            let stat_shares = split_uj(s * 1e6, &cycles, &cycles);
            for (i, r) in out.iter_mut().enumerate() {
                r.components.push((c, dyn_shares[i] + stat_shares[i]));
            }
        }
        for r in &mut out {
            r.total_uj = r.components.iter().map(|(_, e)| e).sum();
        }
        // Conservation fix-up: proportional splitting is exact only in
        // real arithmetic; in f64 the fold can drift by a few ulps.
        // Fold the residual into one share until the ordered sum
        // reproduces the headline total bit-exactly. Applying the full
        // residual can oscillate forever when the exact sum sits on a
        // half-ulp tie (round-half-even flips it one ulp each way), so
        // each element also tries fractional corrections — the shares
        // live at a smaller scale than the total, where sub-ulp steps
        // are exact — before the walk moves to the next element.
        let target = self.total_uj();
        let mut by_size: Vec<usize> = (0..out.len()).collect();
        by_size.sort_by(|&a, &b| out[b].total_uj.total_cmp(&out[a].total_uj));
        'fixup: for &k in by_size.iter().cycle().take(25 * by_size.len()) {
            for scale in [1.0, 0.5, 0.25, 0.125] {
                let sum: f64 = out.iter().map(|r| r.total_uj).sum();
                let diff = target - sum;
                if diff == 0.0 {
                    break 'fixup;
                }
                out[k].total_uj += diff * scale;
            }
        }
        let got = RoutineEnergyAttribution { routines: out };
        debug_assert_eq!(
            got.total_uj().to_bits(),
            target.to_bits(),
            "attribution residual fix-up did not converge"
        );
        got
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, d, s) in &self.entries {
            writeln!(f, "{:10} {:12.3} µJ", c.name(), (d + s) * 1e6)?;
        }
        write!(f, "{:10} {:12.3} µJ", "total", self.total_uj())
    }
}

/// Computes the energy breakdown of one run (eq. 2.7: power × time, per
/// component, split into switching and leakage per §2.3).
pub fn energy(a: &Activity) -> EnergyBreakdown {
    let mut entries = Vec::new();
    let variant = if a.mult_variant_factor == 0.0 {
        1.0
    } else {
        a.mult_variant_factor
    };
    // Pete.
    entries.push((
        Component::PeteCore,
        logic::pete_dynamic_j(a.busy_cycles, a.stall_cycles, a.mult_active_cycles, variant),
        logic::pete_static_j(a.cycles),
    ));
    // ROM (256 KB; static zero per the paper's assumption).
    let rom_cap = 256 * 1024;
    entries.push((
        Component::Rom,
        logic::events_pj_j(a.rom_word_reads, mem::sram_access_pj(rom_cap))
            + logic::events_pj_j(a.rom_line_reads, mem::sram_line_access_pj(rom_cap)),
        0.0,
    ));
    // RAM (16 KB).
    let ram_cap = 16 * 1024;
    entries.push((
        Component::Ram,
        logic::events_pj_j(a.ram_reads + a.ram_writes, mem::sram_access_pj(ram_cap)),
        logic::mw_for_cycles_j(mem::leakage_mw(ram_cap, false), a.cycles),
    ));
    // Uncore (only when a cache is configured, §5.3.2).
    if let Some(ic) = a.icache {
        entries.push((
            Component::Uncore,
            logic::events_pj_j(ic.accesses, mem::sram_access_pj(ic.size_bytes))
                + logic::events_pj_j(ic.fills, mem::sram_line_access_pj(ic.size_bytes))
                + logic::mw_for_cycles_j(UNCORE_DYN_MW, a.cycles),
            logic::mw_for_cycles_j(
                mem::leakage_mw(ic.size_bytes, false) + UNCORE_STATIC_MW,
                a.cycles,
            ),
        ));
    }
    // Accelerator.
    if let Some(cop) = a.cop {
        let idle = a.cycles.saturating_sub(cop.busy_cycles);
        // Gating (§8 extension): clock gating removes idle dynamic power;
        // power gating additionally removes leakage while idle.
        let idle_dyn_on = cop.gating == Gating::None;
        let static_cycles = match cop.gating {
            Gating::Power => cop.busy_cycles + cop.dma_cycles,
            _ => a.cycles,
        };
        match cop.kind {
            CopKind::Monte => entries.push((
                Component::Monte,
                logic::events_pj_j(cop.busy_cycles, MONTE_BUSY_PJ_PER_CYCLE)
                    + if idle_dyn_on {
                        logic::events_pj_j(idle, MONTE_IDLE_PJ_PER_CYCLE)
                    } else {
                        0.0
                    }
                    + logic::events_pj_j(cop.dma_cycles, MONTE_DMA_PJ_PER_WORD)
                    + logic::events_pj_j(cop.scratch_accesses, MONTE_SCRATCH_PJ),
                logic::mw_for_cycles_j(MONTE_STATIC_MW, static_cycles),
            )),
            CopKind::Billie { m } => {
                let (dyn_f, stat_f) = if cop.sram_register_file {
                    (BILLIE_SRAM_RF_DYN_FACTOR, BILLIE_SRAM_RF_STATIC_FACTOR)
                } else {
                    (1.0, 1.0)
                };
                entries.push((
                    Component::Billie,
                    dyn_f
                        * (logic::mw_for_cycles_j(
                            billie_dyn_active_mw(m),
                            cop.busy_cycles + cop.dma_cycles,
                        ) + if idle_dyn_on {
                            logic::mw_for_cycles_j(
                                billie_dyn_idle_mw(m),
                                idle.saturating_sub(cop.dma_cycles),
                            )
                        } else {
                            0.0
                        }),
                    stat_f * logic::mw_for_cycles_j(billie_static_mw(m), static_cycles),
                ))
            }
        }
    }
    EnergyBreakdown {
        entries,
        time_s: a.time_s(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_like(cycles: u64) -> Activity {
        Activity {
            cycles,
            busy_cycles: cycles * 9 / 10,
            stall_cycles: cycles / 10,
            mult_active_cycles: cycles / 5,
            mult_variant_factor: 1.0,
            rom_word_reads: cycles * 95 / 100,
            rom_line_reads: 0,
            ram_reads: cycles / 5,
            ram_writes: cycles / 10,
            icache: None,
            cop: None,
        }
    }

    #[test]
    fn rom_dominates_the_baseline() {
        // §7.1: "a significant portion of the energy consumed by the
        // baseline ... is spent in the ROM".
        let e = energy(&baseline_like(1_000_000));
        assert!(e.component_uj(Component::Rom) > e.component_uj(Component::Ram));
        assert!(e.component_uj(Component::Rom) > 0.5 * e.component_uj(Component::PeteCore));
    }

    #[test]
    fn static_fraction_is_small() {
        // §7.4: static ≈ 8.5 % of the total.
        let e = energy(&baseline_like(1_000_000));
        assert!(e.static_fraction() < 0.15, "{}", e.static_fraction());
        assert!(e.static_fraction() > 0.01);
    }

    #[test]
    fn cache_trades_rom_for_uncore() {
        // Fig 7.2: the 4 KB I$ configuration trades ROM energy for
        // uncore energy and wins overall.
        let base = energy(&baseline_like(1_000_000));
        let mut cached = baseline_like(950_000);
        cached.rom_word_reads = 50_000; // data-side only
        cached.rom_line_reads = 3_000;
        cached.icache = Some(IcacheActivity {
            size_bytes: 4 * 1024,
            accesses: 900_000,
            fills: 3_000,
        });
        let e = energy(&cached);
        assert!(e.component_uj(Component::Rom) < base.component_uj(Component::Rom) / 4.0);
        assert!(e.component_uj(Component::Uncore) > 0.0);
        assert!(e.total_uj() < base.total_uj());
    }

    #[test]
    fn power_split_adds_up() {
        let a = baseline_like(2_000_000);
        let e = energy(&a);
        let (dyn_mw, stat_mw) = e.power_mw();
        let total_check = (dyn_mw + stat_mw) * 1e-3 * a.time_s() * 1e6;
        assert!((total_check - e.total_uj()).abs() / e.total_uj() < 1e-9);
    }

    #[test]
    fn billie_power_exceeds_monte_power() {
        // Fig 7.10: the Billie systems consume the most power.
        let mut with_monte = baseline_like(1_000_000);
        with_monte.cop = Some(CopActivity {
            kind: CopKind::Monte,
            busy_cycles: 600_000,
            dma_cycles: 100_000,
            scratch_accesses: 2_000_000,
            gating: Gating::None,
            sram_register_file: false,
        });
        let mut with_billie = baseline_like(1_000_000);
        with_billie.cop = Some(CopActivity {
            kind: CopKind::Billie { m: 163 },
            busy_cycles: 380_000,
            dma_cycles: 20_000,
            scratch_accesses: 0,
            gating: Gating::None,
            sram_register_file: false,
        });
        let em = energy(&with_monte);
        let eb = energy(&with_billie);
        assert!(
            eb.component_uj(Component::Billie) > em.component_uj(Component::Monte),
            "billie {} vs monte {}",
            eb.component_uj(Component::Billie),
            em.component_uj(Component::Monte)
        );
    }

    #[test]
    fn gating_reduces_idle_accelerator_energy() {
        // §8 extension: clock gating kills idle dynamic power, power
        // gating also kills idle leakage.
        let mut a = baseline_like(1_000_000);
        let mk = |gating| CopActivity {
            kind: CopKind::Billie { m: 571 },
            busy_cycles: 300_000,
            dma_cycles: 10_000,
            scratch_accesses: 0,
            gating,
            sram_register_file: false,
        };
        a.cop = Some(mk(Gating::None));
        let none = energy(&a).component_uj(Component::Billie);
        a.cop = Some(mk(Gating::Clock));
        let clock = energy(&a).component_uj(Component::Billie);
        a.cop = Some(mk(Gating::Power));
        let power = energy(&a).component_uj(Component::Billie);
        assert!(clock < none);
        assert!(power < clock);
    }

    #[test]
    fn sram_register_file_halves_billie_energy() {
        // §8 extension: the SRAM register file recovers a large share of
        // the "over half of Billie's energy" spent in flip-flops.
        let mut a = baseline_like(1_000_000);
        let mk = |sram| CopActivity {
            kind: CopKind::Billie { m: 163 },
            busy_cycles: 400_000,
            dma_cycles: 10_000,
            scratch_accesses: 0,
            gating: Gating::None,
            sram_register_file: sram,
        };
        a.cop = Some(mk(false));
        let ff = energy(&a).component_uj(Component::Billie);
        a.cop = Some(mk(true));
        let sram = energy(&a).component_uj(Component::Billie);
        assert!(sram < 0.6 * ff, "sram {sram} vs flip-flop {ff}");
    }

    fn routine(name: &str, cycles: u64, rom: u64, ram: u64) -> RoutineActivity {
        RoutineActivity {
            name: name.to_owned(),
            cycles,
            instructions: cycles,
            rom_reads: rom,
            ram_reads: ram,
            ..Default::default()
        }
    }

    #[test]
    fn attribution_conserves_total_exactly() {
        // The invariant, on an awkward three-way split (1/3 shares
        // guarantee rounding residue): attributed totals sum bit-exactly
        // to the headline total.
        let e = energy(&baseline_like(1_000_003));
        let rs = vec![
            routine("fmul", 333_334, 100_001, 7_919),
            routine("fred", 333_336, 200_003, 104_729),
            routine("other", 333_333, 650_000, 187_355),
        ];
        let att = e.attribute(&rs);
        assert_eq!(att.total_uj().to_bits(), e.total_uj().to_bits());
        assert_eq!(att.routines.len(), 3);
        // Per-component conservation holds to f64 fold precision.
        for (i, &(c, _, _)) in e.entries().iter().enumerate() {
            let sum: f64 = att.routines.iter().map(|r| r.components[i].1).sum();
            let want = e.component_uj(c);
            assert!(
                (sum - want).abs() <= 1e-9 * want.max(1.0),
                "{c:?}: {sum} vs {want}"
            );
        }
    }

    #[test]
    fn attribution_follows_the_driving_counters() {
        let e = energy(&baseline_like(1_000_000));
        // Same cycles, but `hot` does all the RAM traffic.
        let rs = vec![
            routine("hot", 500_000, 475_000, 300_000),
            routine("cold", 500_000, 475_000, 0),
        ];
        let att = e.attribute(&rs);
        let hot_ram = att.routines[0]
            .components
            .iter()
            .find(|(c, _)| *c == Component::Ram)
            .unwrap()
            .1;
        let cold_ram = att.routines[1]
            .components
            .iter()
            .find(|(c, _)| *c == Component::Ram)
            .unwrap()
            .1;
        assert!(hot_ram > cold_ram * 2.0, "hot {hot_ram} cold {cold_ram}");
        // Core logic splits by cycles: equal here (static RAM leakage
        // also splits by cycles, so `cold` still gets a RAM share).
        let hot_core = att.routines[0].components[0].1;
        let cold_core = att.routines[1].components[0].1;
        assert!((hot_core - cold_core).abs() < 1e-12 * hot_core);
        assert!(cold_ram > 0.0);
    }

    #[test]
    fn attribution_zero_weight_falls_back_to_cycles() {
        // A Monte system where the per-routine cop counters are all
        // zero (e.g. the slice predates the accelerator): Monte energy
        // falls back to a cycle-proportional split instead of vanishing.
        let mut a = baseline_like(1_000_000);
        a.cop = Some(CopActivity {
            kind: CopKind::Monte,
            busy_cycles: 400_000,
            dma_cycles: 50_000,
            scratch_accesses: 1_200_000,
            gating: Gating::None,
            sram_register_file: false,
        });
        let e = energy(&a);
        let rs = vec![
            routine("a", 750_000, 500_000, 100_000),
            routine("b", 250_000, 450_000, 200_000),
        ];
        let att = e.attribute(&rs);
        assert_eq!(att.total_uj().to_bits(), e.total_uj().to_bits());
        let monte_a = att
            .routine("a")
            .unwrap()
            .components
            .iter()
            .find(|(c, _)| *c == Component::Monte)
            .unwrap()
            .1;
        let monte_b = att
            .routine("b")
            .unwrap()
            .components
            .iter()
            .find(|(c, _)| *c == Component::Monte)
            .unwrap()
            .1;
        assert!(monte_a > 2.0 * monte_b, "{monte_a} vs {monte_b}");
    }

    #[test]
    fn attribution_single_routine_gets_everything() {
        let e = energy(&baseline_like(123_457));
        let att = e.attribute(&[routine("all", 123_457, 117_284, 37_036)]);
        assert_eq!(att.total_uj().to_bits(), e.total_uj().to_bits());
        assert_eq!(att.routines[0].name, "all");
    }

    #[test]
    fn display_lists_components() {
        let e = energy(&baseline_like(10_000));
        let s = e.to_string();
        assert!(s.contains("ROM"));
        assert!(s.contains("total"));
    }
}
