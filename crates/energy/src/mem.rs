//! Cacti-like memory energy model (Ch. 6).

use crate::constants::{
    LINE_ACCESS_FACTOR, SRAM_ACCESS_BASE_PJ, SRAM_ACCESS_SQRT_PJ, SRAM_LEAK_UW_PER_KB,
};

/// Energy of one 32-bit access to an SRAM of the given capacity, pJ.
pub fn sram_access_pj(capacity_bytes: u32) -> f64 {
    SRAM_ACCESS_BASE_PJ + SRAM_ACCESS_SQRT_PJ * (capacity_bytes as f64).sqrt()
}

/// Energy of one 128-bit line access (cache fill / prefetch from the
/// widened ROM port, §5.3.2), pJ.
pub fn sram_line_access_pj(capacity_bytes: u32) -> f64 {
    LINE_ACCESS_FACTOR * sram_access_pj(capacity_bytes)
}

/// SRAM leakage power, mW. Pass `is_rom = true` for the program ROM,
/// whose static power the paper assumes to be zero (Ch. 6).
pub fn leakage_mw(capacity_bytes: u32, is_rom: bool) -> f64 {
    if is_rom {
        0.0
    } else {
        SRAM_LEAK_UW_PER_KB * (capacity_bytes as f64 / 1024.0) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rom_reads_cost_much_more_than_small_ram_reads() {
        // The §5.3 observation that motivates the instruction cache.
        assert!(sram_access_pj(256 * 1024) > 3.0 * sram_access_pj(4 * 1024));
    }

    #[test]
    fn rom_has_no_leakage() {
        assert_eq!(leakage_mw(256 * 1024, true), 0.0);
        assert!(leakage_mw(16 * 1024, false) > 0.0);
    }

    #[test]
    fn line_access_cheaper_than_four_words() {
        let c = 256 * 1024;
        assert!(sram_line_access_pj(c) < 4.0 * sram_access_pj(c));
    }
}
