//! Per-block logic power helpers.

use crate::constants::*;

/// Joules consumed by a block drawing `mw` milliwatts for `cycles` clock
/// cycles at the system clock.
pub fn mw_for_cycles_j(mw: f64, cycles: u64) -> f64 {
    mw * 1e-3 * (cycles as f64) * CLOCK_NS * 1e-9
}

/// Joules of `n` events at `pj` picojoules each.
pub fn events_pj_j(n: u64, pj: f64) -> f64 {
    n as f64 * pj * 1e-12
}

/// Pete's dynamic energy, J: active cycles at full power, stalled cycles
/// at clock-network power (§7.1), plus the Hi/Lo multiplier activity
/// scaled by the §7.8 multiplier-variant factor.
pub fn pete_dynamic_j(
    busy_cycles: u64,
    stall_cycles: u64,
    mult_active_cycles: u64,
    mult_variant_factor: f64,
) -> f64 {
    // The §7.8 variant factor scales the whole core's dynamic power —
    // the paper measured Pete's power with each multiplier installed
    // (Karatsuba −3.52 % core power vs operand scanning, −13.4 % vs a
    // parallel multiplier).
    mult_variant_factor
        * (mw_for_cycles_j(PETE_DYN_ACTIVE_MW, busy_cycles)
            + mw_for_cycles_j(PETE_DYN_STALL_MW, stall_cycles)
            + mw_for_cycles_j(MULT_ACTIVE_MW, mult_active_cycles))
}

/// Pete's static energy, J.
pub fn pete_static_j(cycles: u64) -> f64 {
    mw_for_cycles_j(PETE_STATIC_MW, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_second_at_one_mw_is_one_mj() {
        let cycles = (1.0 / (CLOCK_NS * 1e-9)) as u64;
        let e = mw_for_cycles_j(1.0, cycles);
        assert!((e - 1e-3).abs() / 1e-3 < 1e-6);
    }

    #[test]
    fn stalled_pete_is_cheaper_but_not_free() {
        let active = pete_dynamic_j(1000, 0, 0, 1.0);
        let stalled = pete_dynamic_j(0, 1000, 0, 1.0);
        assert!(stalled < active);
        assert!(stalled > 0.5 * active);
    }
}
