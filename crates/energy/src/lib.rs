//! The 45 nm energy model (Ch. 6, §2.3).
//!
//! The paper computes `Energy = Power × Time` (eq. 2.7) with post-
//! synthesis PrimeTime power for logic and Cacti for memories. This crate
//! substitutes documented analytic models with the same *structure*:
//!
//! * [`mem`] — a Cacti-like SRAM model: per-access energy and leakage as
//!   functions of capacity, with the paper's stated ROM assumption
//!   ("ROM dynamic power ... equivalent to a comparably sized RAM, ROM
//!   static power ... zero", Ch. 6);
//! * [`logic`] — per-block activity-weighted dynamic power plus static
//!   power for Pete, the uncore, Monte, and Billie, calibrated against
//!   the ratios the paper reports (see [`constants`]);
//! * [`ffau`] — the absolute FFAU numbers of Tables 7.3/7.4 (the §7.9
//!   standalone study at 100 MHz / 0.9 V logic / 0.7 V memory);
//! * [`report`] — turning a run's event counters ([`Activity`]) into an
//!   energy breakdown by component, mirroring the stacked bars of
//!   Figs 7.2/7.3/7.9;
//! * [`area`] — a kilo-gate-equivalent area proxy per configuration,
//!   the third objective of the `ule-dse` Pareto frontiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod constants;
pub mod ffau;
pub mod logic;
pub mod mem;
pub mod report;

pub use report::{
    Activity, Component, CopActivity, CopKind, EnergyBreakdown, IcacheActivity, RoutineActivity,
    RoutineEnergy, RoutineEnergyAttribution,
};
