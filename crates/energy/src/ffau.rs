//! The standalone FFAU design-space study numbers (§7.9): area, static
//! and dynamic power versus datapath width, at 100 MHz, 0.9 V logic,
//! 0.7 V memory — the operating point of Tables 7.3/7.4 and Fig 7.15.
//!
//! These are the paper's measured values, embedded as the model for the
//! `t7_3`/`t7_4`/`fig7_15` reproductions; combined with the cycle counts
//! our FFAU model produces (eq. 5.2, which reproduces the paper's
//! execution times exactly), they regenerate Table 7.4's energies.

/// The ARM Cortex-M3 reference of Table 7.5 (100 MHz, 0.9 V):
/// `(key_bits, exec_ns, avg_power_uw, energy_nj)`.
pub const ARM_CORTEX_M3: [(usize, f64, f64, f64); 3] = [
    (192, 13_870.0, 4_500.0, 62.4),
    (256, 23_010.0, 4_500.0, 103.6),
    (384, 48_530.0, 4_500.0, 218.4),
];

/// One Table 7.3 row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FfauPower {
    /// Datapath width in bits.
    pub width: usize,
    /// Key size in bits.
    pub key_bits: usize,
    /// Area in cell units.
    pub area_cells: u64,
    /// Static power, µW.
    pub static_uw: f64,
    /// Dynamic power, µW.
    pub dynamic_uw: f64,
}

/// Table 7.3, embedded.
pub const FFAU_POWER: [FfauPower; 12] = [
    // 192-bit
    FfauPower {
        width: 8,
        key_bits: 192,
        area_cells: 2_091,
        static_uw: 32.3,
        dynamic_uw: 166.2,
    },
    FfauPower {
        width: 16,
        key_bits: 192,
        area_cells: 4_244,
        static_uw: 59.3,
        dynamic_uw: 311.9,
    },
    FfauPower {
        width: 32,
        key_bits: 192,
        area_cells: 11_329,
        static_uw: 159.1,
        dynamic_uw: 659.9,
    },
    FfauPower {
        width: 64,
        key_bits: 192,
        area_cells: 36_582,
        static_uw: 530.6,
        dynamic_uw: 1_472.7,
    },
    // 256-bit
    FfauPower {
        width: 8,
        key_bits: 256,
        area_cells: 2_091,
        static_uw: 34.0,
        dynamic_uw: 186.2,
    },
    FfauPower {
        width: 16,
        key_bits: 256,
        area_cells: 4_244,
        static_uw: 61.6,
        dynamic_uw: 310.2,
    },
    FfauPower {
        width: 32,
        key_bits: 256,
        area_cells: 11_327,
        static_uw: 161.4,
        dynamic_uw: 684.4,
    },
    FfauPower {
        width: 64,
        key_bits: 256,
        area_cells: 36_582,
        static_uw: 532.9,
        dynamic_uw: 1_613.4,
    },
    // 384-bit
    FfauPower {
        width: 8,
        key_bits: 384,
        area_cells: 2_168,
        static_uw: 35.4,
        dynamic_uw: 197.1,
    },
    FfauPower {
        width: 16,
        key_bits: 384,
        area_cells: 4_322,
        static_uw: 65.0,
        dynamic_uw: 321.6,
    },
    FfauPower {
        width: 32,
        key_bits: 384,
        area_cells: 11_405,
        static_uw: 164.3,
        dynamic_uw: 888.5,
    },
    FfauPower {
        width: 64,
        key_bits: 384,
        area_cells: 36_664,
        static_uw: 535.7,
        dynamic_uw: 1_686.5,
    },
];

/// Looks up the Table 7.3 row for a width/key-size pair.
pub fn ffau_power(width: usize, key_bits: usize) -> Option<FfauPower> {
    FFAU_POWER
        .iter()
        .copied()
        .find(|r| r.width == width && r.key_bits == key_bits)
}

/// Energy of one Montgomery multiplication at the §7.9 operating point,
/// nJ, given the cycle count from the FFAU model (100 MHz clock).
pub fn montmul_energy_nj(width: usize, key_bits: usize, cycles: u64) -> Option<f64> {
    let p = ffau_power(width, key_bits)?;
    let time_s = cycles as f64 * 10.0e-9;
    Some((p.static_uw + p.dynamic_uw) * 1e-6 * time_s * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_7_4_energy_reproduced() {
        // k = ceil(192/32) = 6 -> eq 5.2 gives 151 cycles; Table 7.4 says
        // 1520 ns and 1.245 nJ at 819 µW.
        let cycles = 2 * 36 + 36 + 7 * 3 + 22;
        assert_eq!(cycles, 151);
        let e = montmul_energy_nj(32, 192, cycles + 1).unwrap();
        assert!((e - 1.245).abs() < 0.03, "got {e}");
    }

    #[test]
    fn energy_minimum_at_32_bits_for_192() {
        // Fig 7.15: the 192-bit curve has its minimum at the 32-bit
        // datapath.
        let energies: Vec<f64> = [8usize, 16, 32, 64]
            .iter()
            .map(|&w| {
                let k = (192usize).div_ceil(w) as u64;
                let cc = 2 * k * k + 6 * k + (k + 1) * 3 + 22;
                montmul_energy_nj(w, 192, cc).unwrap()
            })
            .collect();
        assert!(energies[2] < energies[0]);
        assert!(energies[2] < energies[1]);
        assert!(energies[2] < energies[3], "{energies:?}");
    }

    #[test]
    fn larger_keys_favor_wider_datapaths() {
        // Fig 7.15: at 384 bits the optimum moves to >= 64 bits.
        let e = |w: usize| {
            let k = (384usize).div_ceil(w) as u64;
            let cc = 2 * k * k + 6 * k + (k + 1) * 3 + 22;
            montmul_energy_nj(w, 384, cc).unwrap()
        };
        assert!(e(64) < e(32));
    }

    #[test]
    fn ffau_beats_the_arm_reference_by_an_order_of_magnitude() {
        // §7.9: "the FFAU on average yields a 10x improvement".
        let k = 6u64;
        let cc = 2 * k * k + 6 * k + (k + 1) * 3 + 22;
        let ffau = montmul_energy_nj(32, 192, cc).unwrap();
        let arm = ARM_CORTEX_M3[0].3;
        assert!(arm / ffau > 10.0, "ratio {}", arm / ffau);
    }
}
