//! Silicon-area proxy in kilo-gate-equivalents (kGE).
//!
//! The paper reports energy and performance but sizes its blocks only
//! informally (synthesis at 45 nm, §6). The design-space explorer needs
//! a *third* objective so that "just add more hardware" points (bigger
//! caches, wider Billie digits) pay a visible cost, the way the
//! trade-off frontiers of the related accelerator surveys do. This
//! module provides that objective: a deterministic gate-count proxy per
//! configuration, built from the same capacity parameters the energy
//! model already uses.
//!
//! The proxy is *relative*, not sign-off area: constants are calibrated
//! so the ordering matches the qualitative statements of the paper
//! (Billie grows with field size and digit width; an instruction cache
//! costs SRAM plus a controller; Monte is a fixed-size FFAU plus
//! scratchpads). Absolute kGE values should only ever be compared
//! against each other.

/// Accelerator block, as the area model sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopArea {
    /// Monte: fixed 32-bit FFAU datapath + front end + scratchpads.
    Monte,
    /// Billie: bit-parallel squarer/adder over GF(2^m) plus a
    /// digit-serial multiplier whose partial-product array grows with
    /// the digit width `digit`.
    Billie {
        /// Field degree m.
        m: usize,
        /// Multiplier digit width D (Fig 7.14 axis).
        digit: usize,
    },
}

/// The configuration facts the area proxy consumes. Decoupled from the
/// simulator's config types so `ule-energy` stays dependency-free;
/// `ule-core` converts from a `SystemConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AreaInputs {
    /// Instruction-cache capacity in bytes, when one is configured.
    pub icache_size_bytes: Option<u32>,
    /// Attached accelerator, if any.
    pub cop: Option<CopArea>,
    /// Billie register file in SRAM instead of flip-flops (§8
    /// extension): denser cells, smaller register area.
    pub billie_sram_rf: bool,
}

/// Pete core incl. the Hi/Lo multiplier (a small MIPS-like scalar
/// core), kGE.
pub const PETE_CORE_KGE: f64 = 35.0;

/// ROM/RAM controllers, buses, and the always-present uncore glue, kGE.
pub const UNCORE_BASE_KGE: f64 = 6.0;

/// SRAM density: gate-equivalents per KB of capacity (6T cells plus
/// decoders/sense amps, expressed in NAND2 equivalents), kGE per KB.
pub const SRAM_KGE_PER_KB: f64 = 9.0;

/// The 16 KB data RAM is part of every configuration.
pub const RAM_BYTES: u32 = 16 * 1024;

/// Extra cache controller + tag logic on top of the cache SRAM, kGE.
pub const ICACHE_CTRL_KGE: f64 = 3.5;

/// Monte: 32-bit FFAU datapath, microcode sequencer, DMA front end,
/// kGE (scratchpads priced separately as SRAM).
pub const MONTE_LOGIC_KGE: f64 = 28.0;

/// Monte's AB/T scratch memories, bytes.
pub const MONTE_SCRATCH_BYTES: u32 = 4 * 1024;

/// Billie fixed front end (LSU, control), kGE.
pub const BILLIE_BASE_KGE: f64 = 8.0;

/// Billie per-field-bit register/squarer/adder area, kGE per bit.
/// Three full-width operand registers plus the bit-parallel square and
/// add networks all scale linearly with m.
pub const BILLIE_KGE_PER_BIT: f64 = 0.030;

/// Billie digit-serial multiplier: partial-product area per (field bit
/// × digit bit), kGE. The D×m AND/XOR array is the block that grows
/// when Fig 7.14 widens the digit.
pub const BILLIE_MUL_KGE_PER_BIT_DIGIT: f64 = 0.011;

/// Area factor on Billie's *register* share when the register file is
/// SRAM instead of flip-flops (§8 extension): SRAM cells are denser.
pub const BILLIE_SRAM_RF_AREA_FACTOR: f64 = 0.55;

/// Share of [`BILLIE_KGE_PER_BIT`] that is register area (the rest is
/// the squarer/adder logic), used by the SRAM-register-file rebate.
pub const BILLIE_RF_SHARE: f64 = 0.6;

/// SRAM macro area, kGE.
pub fn sram_kge(capacity_bytes: u32) -> f64 {
    SRAM_KGE_PER_KB * capacity_bytes as f64 / 1024.0
}

/// Total area proxy of one configuration, kGE.
///
/// Monotone by construction: adding a cache, attaching an accelerator,
/// growing the cache, the field, or the digit width never *decreases*
/// the result — the Pareto pressure the explorer relies on. The 256 KB
/// program ROM is deliberately excluded: every configuration carries
/// the same ROM, and a constant offset would only compress the relative
/// differences the frontier cares about.
pub fn area_kge(inputs: &AreaInputs) -> f64 {
    let mut kge = PETE_CORE_KGE + UNCORE_BASE_KGE + sram_kge(RAM_BYTES);
    if let Some(size) = inputs.icache_size_bytes {
        kge += ICACHE_CTRL_KGE + sram_kge(size);
    }
    match inputs.cop {
        Some(CopArea::Monte) => {
            kge += MONTE_LOGIC_KGE + sram_kge(MONTE_SCRATCH_BYTES);
        }
        Some(CopArea::Billie { m, digit }) => {
            let rf_factor = if inputs.billie_sram_rf {
                BILLIE_RF_SHARE * BILLIE_SRAM_RF_AREA_FACTOR + (1.0 - BILLIE_RF_SHARE)
            } else {
                1.0
            };
            kge += BILLIE_BASE_KGE
                + BILLIE_KGE_PER_BIT * m as f64 * rf_factor
                + BILLIE_MUL_KGE_PER_BIT_DIGIT * m as f64 * digit as f64;
        }
        None => {}
    }
    kge
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain() -> AreaInputs {
        AreaInputs {
            icache_size_bytes: None,
            cop: None,
            billie_sram_rf: false,
        }
    }

    #[test]
    fn baseline_is_the_smallest_system() {
        let base = area_kge(&plain());
        let cached = area_kge(&AreaInputs {
            icache_size_bytes: Some(4 * 1024),
            ..plain()
        });
        let monte = area_kge(&AreaInputs {
            cop: Some(CopArea::Monte),
            ..plain()
        });
        let billie = area_kge(&AreaInputs {
            cop: Some(CopArea::Billie { m: 163, digit: 3 }),
            ..plain()
        });
        assert!(base > 0.0);
        assert!(cached > base);
        assert!(monte > base);
        assert!(billie > base);
    }

    #[test]
    fn area_is_monotone_in_cache_size_field_and_digit() {
        let cache = |b| {
            area_kge(&AreaInputs {
                icache_size_bytes: Some(b),
                ..plain()
            })
        };
        assert!(cache(1024) < cache(2048));
        assert!(cache(2048) < cache(8192));
        let billie = |m, digit| {
            area_kge(&AreaInputs {
                cop: Some(CopArea::Billie { m, digit }),
                ..plain()
            })
        };
        assert!(billie(163, 1) < billie(163, 3));
        assert!(billie(163, 3) < billie(163, 16));
        assert!(billie(163, 3) < billie(571, 3));
    }

    #[test]
    fn sram_register_file_shrinks_billie() {
        let mk = |sram| {
            area_kge(&AreaInputs {
                cop: Some(CopArea::Billie { m: 571, digit: 3 }),
                billie_sram_rf: sram,
                ..plain()
            })
        };
        assert!(mk(true) < mk(false));
    }

    #[test]
    fn big_billie_beats_monte_in_area() {
        // A K-571 Billie datapath is a lot of XOR tree; the fixed-width
        // FFAU stays put.
        let monte = area_kge(&AreaInputs {
            cop: Some(CopArea::Monte),
            ..plain()
        });
        let billie = area_kge(&AreaInputs {
            cop: Some(CopArea::Billie { m: 571, digit: 8 }),
            ..plain()
        });
        assert!(billie > monte);
    }
}
