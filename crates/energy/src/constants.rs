//! Every calibrated constant of the energy model, with the paper anchor
//! it is calibrated against. All system-level power is at the study's
//! operating point: 45 nm, 333 MHz (3 ns clock, §5.1), nominal voltage.
//!
//! The *absolute* scale of these constants is a modeling choice (the
//! paper's own absolute axes come from proprietary PrimeTime/Cacti runs);
//! what the reproduction preserves — and what the tests pin — are the
//! ratios the paper reports: ISA-extension power within 1 % of baseline,
//! the Monte configuration ~18.6 % below baseline, the I$ configuration
//! ~14.5 % below, static power ~8.5 % of total (§7.4), Pete's power
//! dropping ~23 % when mostly stalled behind Monte (§7.1), and Billie
//! configurations drawing the most power, roughly linearly in `m`
//! (§7.4).

/// Clock period of every system-level run (§5.1: "a period of 3 ns").
pub const CLOCK_NS: f64 = 3.0;

/// Clock frequency in Hz.
pub const CLOCK_HZ: f64 = 1.0e9 / CLOCK_NS;

// ---------------------------------------------------------------------
// Pete core (5-stage pipeline + register file + Karatsuba Hi/Lo unit)
// ---------------------------------------------------------------------

/// Pete dynamic power while issuing instructions, mW. Sized so a
/// baseline system (core + 256 KB ROM fetch traffic + 16 KB RAM) lands
/// in the tens-of-mW class of the SA-1110-comparable core the paper
/// positions Pete against (§3).
pub const PETE_DYN_ACTIVE_MW: f64 = 12.0;

/// Pete dynamic power while stalled, mW. §7.1: "the dominant
/// contributors to Pete's power is the clock network and registers,
/// which still have a high activity factor while stalled" — Pete's power
/// drops only ~23 % when it spends most of its time stalled.
pub const PETE_DYN_STALL_MW: f64 = 8.6;

/// Pete static power, mW (≈8 % of its total, §7.4's static share).
pub const PETE_STATIC_MW: f64 = 1.0;

/// Extra dynamic power while the multi-cycle Karatsuba multiplier is
/// active, mW. §7.8: Karatsuba saves ~3.5 % of core power versus an
/// operand-scanning multi-cycle multiplier and ~13.4 % versus a parallel
/// multiplier.
pub const MULT_ACTIVE_MW: f64 = 1.5;

/// §7.8 multiplier-variant power factors relative to the Karatsuba unit
/// (core-level: Karatsuba = 1.0; operand-scanning multi-cycle ≈ +3.52 %
/// core power; parallel pipelined ≈ +13.4 %).
pub const MULT_VARIANT_OPERAND_SCAN: f64 = 1.0365;
/// See [`MULT_VARIANT_OPERAND_SCAN`].
pub const MULT_VARIANT_PARALLEL: f64 = 1.155;

// ---------------------------------------------------------------------
// Memories (Cacti-like, §Ch. 6)
// ---------------------------------------------------------------------

/// 32-bit SRAM access energy: `E = A + B * sqrt(capacity_bytes)` pJ.
/// Yields ≈4.4 pJ at 1 KB, ≈6.8 pJ at 4 KB, ≈11.6 pJ at 16 KB, ≈40 pJ
/// at 256 KB — the capacity dependence that makes instruction fetch from
/// the 256 KB ROM the dominant consumer (§5.3, §7.1).
pub const SRAM_ACCESS_BASE_PJ: f64 = 2.0;
/// See [`SRAM_ACCESS_BASE_PJ`].
pub const SRAM_ACCESS_SQRT_PJ: f64 = 0.075;

/// Energy multiplier for a 128-bit line access relative to a 32-bit word
/// access of the same array (§5.3.2's widened ROM port).
pub const LINE_ACCESS_FACTOR: f64 = 2.5;

/// SRAM leakage per KB, µW (45 nm low-power). ROM leakage is zero by
/// the paper's assumption (Ch. 6).
pub const SRAM_LEAK_UW_PER_KB: f64 = 25.0;

// ---------------------------------------------------------------------
// Uncore (instruction cache controller, ROM controller, buffers, §5.3.2)
// ---------------------------------------------------------------------

/// Uncore dynamic power while the system runs (controller + buffers),
/// mW, excluding the cache SRAM itself (charged per access).
pub const UNCORE_DYN_MW: f64 = 0.9;
/// Uncore static power, mW.
pub const UNCORE_STATIC_MW: f64 = 0.15;

// ---------------------------------------------------------------------
// Monte (§5.4) at the system clock
// ---------------------------------------------------------------------

/// FFAU + front-end dynamic energy per busy cycle, pJ (scaled from the
/// §7.9 measurement of ~660 µW dynamic for the 32-bit FFAU at 100 MHz:
/// ≈6.6 pJ/cycle, plus control/queue overhead).
pub const MONTE_BUSY_PJ_PER_CYCLE: f64 = 17.5;

/// Monte dynamic energy per idle (attached but unused) cycle, pJ — no
/// clock gating in the study (§7.4).
pub const MONTE_IDLE_PJ_PER_CYCLE: f64 = 2.5;

/// DMA energy per transferred word, pJ (excludes the RAM access itself,
/// which is charged to the RAM).
pub const MONTE_DMA_PJ_PER_WORD: f64 = 1.2;

/// Monte scratchpad (AB/T memories) energy per access, pJ — small
/// dual-port arrays (≤4k words).
pub const MONTE_SCRATCH_PJ: f64 = 2.7;

/// Monte static power, mW (Table 7.3's 32-bit static, scaled to the
/// system node/voltage).
pub const MONTE_STATIC_MW: f64 = 0.35;

// ---------------------------------------------------------------------
// Billie (§5.5) at the system clock
// ---------------------------------------------------------------------

/// Billie dynamic power while computing, mW, for a given field size m.
/// Anchors (§7.3, §7.4): the 163-bit unit is ~1.45× Pete's area and the
/// Billie configurations draw the most total power, growing roughly
/// linearly with m (the flip-flop register file dominates: "over half of
/// Billie's energy is being consumed in the synthesized register file",
/// §8).
pub fn billie_dyn_active_mw(m: usize) -> f64 {
    26.0 + 36.0 * (m as f64 - 163.0) / (571.0 - 163.0)
}

/// Billie dynamic power while idle (clock still running, §7.4: Billie is
/// "idle, wasting energy" for ~62 % of an ECDSA operation).
pub fn billie_dyn_idle_mw(m: usize) -> f64 {
    0.60 * billie_dyn_active_mw(m)
}

/// Billie static power, mW (flip-flop register file leakage scales
/// with m).
pub fn billie_static_mw(m: usize) -> f64 {
    1.5 + 4.0 * (m as f64 - 163.0) / (571.0 - 163.0)
}

/// Dynamic-power factor of an SRAM-backed Billie register file relative
/// to the synthesized flip-flop file — the paper's first listed future
/// work (§8: "over half of Billie's energy is being consumed in the
/// synthesized register file ... evaluate ... a register file
/// implemented in more efficient memory (SRAM) technology"). An SRAM
/// macro activates one row per access instead of clocking 16×m
/// flip-flops every cycle.
pub const BILLIE_SRAM_RF_DYN_FACTOR: f64 = 0.45;

/// Static-power factor of the SRAM register file (denser cells leak
/// less than flip-flops at 45 nm low-power).
pub const BILLIE_SRAM_RF_STATIC_FACTOR: f64 = 0.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pete_stall_power_matches_the_23_percent_observation() {
        let drop = 1.0 - PETE_DYN_STALL_MW / PETE_DYN_ACTIVE_MW;
        assert!((drop - 0.23).abs() < 0.06, "stall drop {drop}");
    }

    #[test]
    fn sram_energy_grows_with_capacity() {
        let e = |c: f64| SRAM_ACCESS_BASE_PJ + SRAM_ACCESS_SQRT_PJ * c.sqrt();
        assert!(e(256.0 * 1024.0) > 3.0 * e(4.0 * 1024.0));
        assert!(e(1024.0) > 0.0);
    }

    #[test]
    fn billie_power_grows_linearly() {
        assert!(billie_dyn_active_mw(571) > 2.0 * billie_dyn_active_mw(163));
        assert!(billie_static_mw(571) > billie_static_mw(163));
        assert!(billie_dyn_idle_mw(163) < billie_dyn_active_mw(163));
    }
}
