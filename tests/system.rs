//! Cross-crate integration tests: the whole system — host crypto,
//! assembler, simulator, accelerators, energy model — exercised through
//! the public `ule-core` API, pinning the paper's headline *shapes*.

use ule_repro::core_api::{RunOptions, System, SystemConfig, Workload};
use ule_repro::curves::params::CurveId;
use ule_repro::energy::Component;
use ule_repro::monte::MonteConfig;
use ule_repro::pete::icache::CacheConfig;
use ule_repro::swlib::builder::Arch;

fn sv(curve: CurveId, arch: Arch) -> ule_repro::core_api::RunReport {
    System::new(SystemConfig::new(curve, arch)).run_with(RunOptions::new(Workload::SignVerify))
}

#[test]
fn design_space_ordering_prime() {
    // Fig 1.1 / Fig 7.1: more acceleration, less energy.
    let base = sv(CurveId::P192, Arch::Baseline);
    let ext = sv(CurveId::P192, Arch::IsaExt);
    let monte = sv(CurveId::P192, Arch::Monte);
    assert!(ext.energy_uj() < base.energy_uj());
    assert!(monte.energy_uj() < ext.energy_uj());
    // Monte's improvement factor lands in the paper's 5.17x..6.34x band
    // (allow a little slack around it).
    let factor = base.energy_uj() / monte.energy_uj();
    assert!((4.5..7.5).contains(&factor), "Monte factor {factor}");
}

#[test]
fn design_space_ordering_binary() {
    let base = sv(CurveId::K163, Arch::Baseline);
    let ext = sv(CurveId::K163, Arch::IsaExt);
    let billie = sv(CurveId::K163, Arch::Billie);
    assert!(ext.energy_uj() < base.energy_uj());
    assert!(billie.energy_uj() < ext.energy_uj());
    // §7.2: software-only binary fields are several times worse.
    assert!(base.energy_uj() / ext.energy_uj() > 3.0);
}

#[test]
fn energy_grows_superlinearly_with_key_size() {
    // §7.1: "the energy consumed increases quite rapidly as the key size
    // is increased" — substantially more than linearly for software.
    let e192 = sv(CurveId::P192, Arch::Baseline).energy_uj();
    let e256 = sv(CurveId::P256, Arch::Baseline).energy_uj();
    let linear = 256.0 / 192.0;
    assert!(e256 / e192 > linear * 1.5, "{}", e256 / e192);
}

#[test]
fn binary_beats_prime_at_equal_security_on_ext() {
    // Fig 7.7: binary ISA extensions beat prime ISA extensions at every
    // equivalent-security pairing.
    for (p, b) in [
        (CurveId::P192, CurveId::K163),
        (CurveId::P256, CurveId::K283),
    ] {
        let pe = sv(p, Arch::IsaExt).energy_uj();
        let be = sv(b, Arch::IsaExt).energy_uj();
        assert!(be < pe, "{}: {} !< {}", p.name(), be, pe);
    }
}

#[test]
fn breakdown_components_sum_to_total() {
    let r = sv(CurveId::P192, Arch::Monte);
    let sum: f64 = r.energy.components().iter().map(|(_, uj)| uj).sum();
    assert!((sum - r.energy.total_uj()).abs() < 1e-6);
    assert!(r.energy.component_uj(Component::Monte) > 0.0);
}

#[test]
fn rom_dominates_software_configurations() {
    // §7.1: instruction fetch from program ROM is a dominant consumer on
    // the baseline, comparable to the core itself.
    let r = sv(CurveId::P192, Arch::Baseline);
    let rom = r.energy.component_uj(Component::Rom);
    let core = r.energy.component_uj(Component::PeteCore);
    assert!(rom > 0.5 * core, "rom {rom} core {core}");
}

#[test]
fn icache_saves_energy_and_rom_reads() {
    let plain = sv(CurveId::P192, Arch::IsaExt);
    let cached = System::new(
        SystemConfig::new(CurveId::P192, Arch::IsaExt).with_icache(CacheConfig::best()),
    )
    .run_with(RunOptions::new(Workload::SignVerify));
    assert!(cached.energy_uj() < plain.energy_uj());
    assert!(cached.activity.rom_word_reads < plain.activity.rom_word_reads / 10);
    // Uncore appears only in the cached configuration.
    assert!(cached.energy.component_uj(Component::Uncore) > 0.0);
    assert_eq!(plain.energy.component_uj(Component::Uncore), 0.0);
}

#[test]
fn monte_double_buffering_saves_time_and_energy() {
    // §7.7 ablation.
    let no_db = SystemConfig::new(CurveId::P192, Arch::Monte).with_monte(MonteConfig {
        double_buffer: false,
        forwarding: false,
        queue_depth: 4,
    });
    let with = sv(CurveId::P192, Arch::Monte);
    let without = System::new(no_db).run_with(RunOptions::new(Workload::SignVerify));
    assert!(with.cycles < without.cycles);
    assert!(with.energy_uj() < without.energy_uj());
}

#[test]
fn billie_config_draws_the_most_power() {
    // Fig 7.10 ordering: Billie > baseline > Monte-with-accelerator-idle.
    let (bd, bs) = sv(CurveId::K163, Arch::Billie).energy.power_mw();
    let (dd, ds) = sv(CurveId::K163, Arch::Baseline).energy.power_mw();
    let (md, ms) = sv(CurveId::P192, Arch::Monte).energy.power_mw();
    assert!(
        bd + bs > dd + ds,
        "billie {} !> baseline {}",
        bd + bs,
        dd + ds
    );
    assert!(
        md + ms < dd + ds,
        "monte {} !< baseline {}",
        md + ms,
        dd + ds
    );
}

#[test]
fn static_power_is_a_small_share() {
    // §7.4: static power ≈ 8.5 % of the total.
    for (c, a) in [
        (CurveId::P192, Arch::Baseline),
        (CurveId::P192, Arch::Monte),
        (CurveId::K163, Arch::Billie),
    ] {
        let f = sv(c, a).energy.static_fraction();
        assert!(f > 0.01 && f < 0.2, "{:?} {:?}: {f}", c, a);
    }
}

#[test]
fn simulated_signature_verifies_across_architectures() {
    // A signature produced by the baseline machine must verify on the
    // ISA-extended machine: the architectures implement the same ECDSA.
    use ule_repro::curves::ecdsa::{self, Keypair};
    use ule_repro::mpmath::mp::Mp;
    use ule_repro::pete::cpu::{Machine, MachineConfig};
    use ule_repro::swlib::builder::build_suite;
    use ule_repro::swlib::harness::{read_buf, run_entry_expect, write_buf};

    let curve = CurveId::K163.curve();
    let k = 6;
    let keys = Keypair::derive(&curve, b"interop");
    let e = ecdsa::hash_to_scalar(&curve, b"interop message");
    let nonce = ecdsa::derive_scalar(&curve, b"interop nonce", b"n");
    // sign on the baseline
    let s_base = build_suite(&curve, Arch::Baseline);
    let mut m = Machine::new(&s_base.program, MachineConfig::baseline());
    write_buf(&mut m, &s_base.program, "arg_e", &e.to_limbs(k));
    write_buf(
        &mut m,
        &s_base.program,
        "arg_d",
        &keys.private().to_limbs(k),
    );
    write_buf(&mut m, &s_base.program, "arg_k", &nonce.to_limbs(k));
    run_entry_expect(&mut m, &s_base.program, "main_sign", u64::MAX / 2);
    let r = read_buf(&m, &s_base.program, "out_r", k);
    let s = read_buf(&m, &s_base.program, "out_s", k);
    // verify on the ISA-extended machine
    let s_ext = build_suite(&curve, Arch::IsaExt);
    let mut m2 = Machine::new(&s_ext.program, MachineConfig::isa_ext());
    let (qx, qy) = match keys.public() {
        ule_repro::curves::ecdsa::PublicKey::Binary(
            ule_repro::curves::binary::AffinePoint2m::Point { x, y },
        ) => (x.limbs().to_vec(), y.limbs().to_vec()),
        _ => unreachable!(),
    };
    write_buf(&mut m2, &s_ext.program, "arg_e", &e.to_limbs(k));
    write_buf(&mut m2, &s_ext.program, "arg_r", &r);
    write_buf(&mut m2, &s_ext.program, "arg_s", &s);
    write_buf(&mut m2, &s_ext.program, "arg_qx", &qx);
    write_buf(&mut m2, &s_ext.program, "arg_qy", &qy);
    run_entry_expect(&mut m2, &s_ext.program, "main_verify", u64::MAX / 2);
    assert_eq!(read_buf(&m2, &s_ext.program, "out_ok", 1), vec![1]);
    // And the host agrees.
    let sig = ecdsa::Signature {
        r: Mp::from_limbs(&r),
        s: Mp::from_limbs(&s),
    };
    assert!(ecdsa::verify_prehashed(&curve, &keys.public(), &e, &sig));
}
