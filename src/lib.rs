//! Umbrella crate for the ULE asymmetric-cryptography reproduction.
//!
//! Re-exports every workspace crate under one roof so that the
//! `examples/` and `tests/` at the repository root can exercise the full
//! system. See `README.md` for a tour and `DESIGN.md` for the system
//! inventory.

pub use ule_bench as bench;
pub use ule_billie as billie;
pub use ule_core as core_api;
pub use ule_curves as curves;
pub use ule_dse as dse;
pub use ule_energy as energy;
pub use ule_isa as isa;
pub use ule_monte as monte;
pub use ule_mpmath as mpmath;
pub use ule_pete as pete;
pub use ule_swlib as swlib;
