//! Monte's run-time reconfigurability (§5.4.2.1) and the §7.9 datapath
//! design space.
//!
//! The whole point of the microcoded accelerator: *one* piece of
//! hardware — one 64-entry microprogram — serves every key size; moving
//! from P-192 to P-521 is a constant-RAM write (`ctc2`), not a new chip.
//! This example drives the microcoded FFAU control unit directly through
//! every NIST prime, then sweeps the datapath width the way Fig 7.15
//! does.
//!
//! ```text
//! cargo run --release --example monte_reconfig
//! ```

use ule_repro::monte::{assemble_cios, Ffau, MicroEngine};
use ule_repro::mpmath::mont::Montgomery;
use ule_repro::mpmath::mp::Mp;
use ule_repro::mpmath::nist::NistPrime;

fn main() {
    println!("One microprogram, every key size (Monte's reconfigurability):\n");
    let mut engine = MicroEngine::new(32, assemble_cios());
    for prime in NistPrime::ALL {
        let p = prime.modulus();
        let k = prime.limbs();
        let mont = Montgomery::new(&p);
        // Reconfigure: write the element width into the constant RAM.
        engine.set_const(0, k as u64);
        let a = p.sub(&Mp::from_u64(1_234_567));
        let b = p.sub(&Mp::from_u64(89));
        let a64: Vec<u64> = a.to_limbs(k).iter().map(|&x| x as u64).collect();
        let b64: Vec<u64> = b.to_limbs(k).iter().map(|&x| x as u64).collect();
        let n64: Vec<u64> = p.to_limbs(k).iter().map(|&x| x as u64).collect();
        let (result, cycles) = engine.run(&a64, &b64, &n64, mont.n0_prime() as u64);
        // Check against the host Montgomery reference.
        let expect: Vec<u64> = mont
            .mul(&a.to_limbs(k), &b.to_limbs(k))
            .iter()
            .map(|&x| x as u64)
            .collect();
        assert_eq!(result, expect, "{}", prime.name());
        assert_eq!(cycles, Ffau::montmul_cycles(k as u64, 3));
        println!(
            "  {:6}  k = {:2} words  MontMult in {:5} cycles (eq. 5.2 exactly)",
            prime.name(),
            k,
            cycles
        );
    }

    println!("\nDatapath-width design space (Fig 7.15, 100 MHz / Table 7.3 power):\n");
    println!(
        "  {:>5} {:>8} {:>10} {:>12}",
        "width", "key", "cycles", "energy nJ"
    );
    for key in [192usize, 256, 384] {
        for w in [8usize, 16, 32, 64] {
            let k = key.div_ceil(w) as u64;
            let cycles = Ffau::montmul_cycles(k, 3);
            let nj = ule_repro::energy::ffau::montmul_energy_nj(w, key, cycles)
                .expect("modeled width/key");
            println!("  {:>5} {:>8} {:>10} {:>12.3}", w, key, cycles, nj);
        }
    }
    println!("\nThe O(k^2) algorithm favors wide datapaths: 32-bit is the energy");
    println!("optimum for 192-bit keys, 64-bit for 384-bit keys — the paper's");
    println!("Fig 7.15 conclusion.");
}
