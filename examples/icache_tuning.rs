//! Instruction-cache tuning (§5.3, §7.5): sweep capacity and the stream
//! buffer prefetcher and find the energy-optimal configuration, the way
//! the paper converged on its 4 KB direct-mapped cache.
//!
//! ```text
//! cargo run --release --example icache_tuning
//! ```

use ule_repro::core_api::{RunOptions, System, SystemConfig, Workload};
use ule_repro::curves::params::CurveId;
use ule_repro::pete::icache::CacheConfig;
use ule_repro::swlib::builder::Arch;

fn main() {
    let curve = CurveId::P192;
    println!(
        "Instruction-cache design sweep ({}, ISA-extended, Sign+Verify)\n",
        curve.name()
    );
    let base = System::new(SystemConfig::new(curve, Arch::IsaExt))
        .run_with(RunOptions::new(Workload::SignVerify));
    println!(
        "{:14} {:>10} {:>10} {:>11} {:>10}",
        "cache", "uJ", "saving", "miss rate", "ROM lines"
    );
    println!(
        "{:14} {:>10.1} {:>10} {:>11} {:>10}",
        "none",
        base.energy_uj(),
        "-",
        "-",
        "-"
    );
    let mut best: Option<(String, f64)> = None;
    for size_kb in [1u32, 2, 4, 8] {
        for prefetch in [false, true] {
            let cache = CacheConfig::real(size_kb * 1024, prefetch);
            let report = System::new(SystemConfig::new(curve, Arch::IsaExt).with_icache(cache))
                .run_with(RunOptions::new(Workload::SignVerify));
            let label = format!("{size_kb} KB{}", if prefetch { " +prefetch" } else { "" });
            let miss = report
                .activity
                .icache
                .map(|c| c.fills as f64 / c.accesses as f64)
                .unwrap_or(0.0);
            println!(
                "{:14} {:>10.1} {:>9.1}% {:>10.3}% {:>10}",
                label,
                report.energy_uj(),
                100.0 * (1.0 - report.energy_uj() / base.energy_uj()),
                100.0 * miss,
                report.activity.rom_line_reads
            );
            if best.as_ref().is_none_or(|(_, e)| report.energy_uj() < *e) {
                best = Some((label, report.energy_uj()));
            }
        }
    }
    let (label, uj) = best.expect("swept at least one configuration");
    println!("\nEnergy-optimal cache for this working set: {label} at {uj:.1} uJ");
    println!("(the paper's larger C++ working set favored 4 KB; the shape —");
    println!(" steep gains up to the working-set size, then flat — is the same)");
}
