//! Quickstart: sign and verify with the host ECC library, then run the
//! same operation through the full simulated embedded system and read
//! its energy bill.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ule_repro::core_api::{RunOptions, System, SystemConfig, Workload};
use ule_repro::curves::ecdsa::{sign, verify, Keypair};
use ule_repro::curves::params::CurveId;
use ule_repro::swlib::builder::Arch;

fn main() {
    // --- Host-side cryptography -------------------------------------
    let curve = CurveId::P256.curve();
    curve.validate().expect("P-256 parameters self-validate");
    let keys = Keypair::derive(&curve, b"quickstart key seed");
    let msg = b"telemetry packet #42";
    let sig = sign(&curve, &keys, msg, b"quickstart nonce seed");
    assert!(verify(&curve, &keys.public(), msg, &sig));
    assert!(!verify(&curve, &keys.public(), b"tampered packet", &sig));
    println!("P-256 ECDSA on the host: signature verified, tamper rejected.");
    println!("  r = {}", sig.r);
    println!("  s = {}", sig.s);

    // --- The same operation on the simulated ultra-low-energy system -
    println!("\nSimulating ECDSA Sign+Verify on the embedded design points:");
    for (curve, arch) in [
        (CurveId::P192, Arch::Baseline),
        (CurveId::P192, Arch::IsaExt),
        (CurveId::P192, Arch::Monte),
        (CurveId::K163, Arch::Billie),
    ] {
        let system = System::new(SystemConfig::new(curve, arch));
        let report = system.run_with(RunOptions::new(Workload::SignVerify));
        println!(
            "  {:6} {:10}  {:>10} cycles  {:>7.2} ms  {:>8.1} uJ",
            curve.name(),
            arch.name(),
            report.cycles,
            report.time_ms(),
            report.energy_uj()
        );
    }
    println!("\nEvery simulated run is checked against the host reference before");
    println!("its numbers are reported (a wrong signature would panic).");
}
