//! The hardware-acceleration trade-off of Fig 1.1, regenerated: sweep
//! every architecture over the security levels and print energy,
//! latency, and average power — the data a system designer would use to
//! pick a point on the reconfigurability/efficiency spectrum.
//!
//! The sweep is submitted as one batch to [`SweepEngine::run_batch`],
//! which simulates the design points in parallel (one worker per core,
//! override with `ULE_SWEEP_THREADS`) and memoizes each report; the
//! table is then printed serially, so the output is identical for any
//! thread count.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ule_repro::bench::{Job, SweepEngine};
use ule_repro::core_api::{SystemConfig, Workload};
use ule_repro::curves::params::CurveId;
use ule_repro::swlib::builder::Arch;

fn archs_for(curve: CurveId) -> &'static [Arch] {
    if curve.is_binary() {
        &[Arch::Baseline, Arch::IsaExt, Arch::Billie]
    } else {
        &[Arch::Baseline, Arch::IsaExt, Arch::Monte]
    }
}

fn main() {
    println!("The design space of ultra-low energy asymmetric cryptography");
    println!("(simulated ECDSA Sign+Verify per configuration)\n");

    let curves = [
        CurveId::P192,
        CurveId::P256,
        CurveId::P384,
        CurveId::K163,
        CurveId::K283,
        CurveId::K409,
    ];
    let jobs: Vec<Job> = curves
        .iter()
        .flat_map(|&curve| {
            archs_for(curve)
                .iter()
                .map(move |&arch| (SystemConfig::new(curve, arch), Workload::SignVerify))
        })
        .collect();

    let engine = SweepEngine::new();
    engine.run_batch(&jobs);
    eprintln!(
        "[{} design points simulated on {} thread(s)]\n",
        engine.simulations(),
        engine.threads()
    );

    println!(
        "{:8} {:10} {:>12} {:>9} {:>9} {:>10}",
        "curve", "arch", "cycles", "ms", "mW", "uJ"
    );
    for curve in curves {
        for &arch in archs_for(curve) {
            let report = engine.run(SystemConfig::new(curve, arch), Workload::SignVerify);
            let (d, s) = report.energy.power_mw();
            println!(
                "{:8} {:10} {:>12} {:>9.2} {:>9.2} {:>10.1}",
                curve.name(),
                arch.name(),
                report.cycles,
                report.time_ms(),
                d + s,
                report.energy_uj()
            );
        }
        println!();
    }
    println!("Reconfigurability decreases left-to-right on Fig 1.1's spectrum:");
    println!("  optimized software -> ISA extensions -> microcoded Monte -> fixed-function Billie");
    println!("while the energy per operation falls by roughly an order of magnitude.");
}
