//! The hardware-acceleration trade-off of Fig 1.1, regenerated: sweep
//! every architecture over the security levels and print energy,
//! latency, and average power — the data a system designer would use to
//! pick a point on the reconfigurability/efficiency spectrum.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ule_repro::core_api::{System, SystemConfig, Workload};
use ule_repro::curves::params::CurveId;
use ule_repro::swlib::builder::Arch;

fn main() {
    println!("The design space of ultra-low energy asymmetric cryptography");
    println!("(simulated ECDSA Sign+Verify per configuration)\n");
    println!(
        "{:8} {:10} {:>12} {:>9} {:>9} {:>10}",
        "curve", "arch", "cycles", "ms", "mW", "uJ"
    );
    for curve in [
        CurveId::P192,
        CurveId::P256,
        CurveId::P384,
        CurveId::K163,
        CurveId::K283,
        CurveId::K409,
    ] {
        let archs: &[Arch] = if curve.is_binary() {
            &[Arch::Baseline, Arch::IsaExt, Arch::Billie]
        } else {
            &[Arch::Baseline, Arch::IsaExt, Arch::Monte]
        };
        for &arch in archs {
            let report = System::new(SystemConfig::new(curve, arch)).run(Workload::SignVerify);
            let (d, s) = report.energy.power_mw();
            println!(
                "{:8} {:10} {:>12} {:>9.2} {:>9.2} {:>10.1}",
                curve.name(),
                arch.name(),
                report.cycles,
                report.time_ms(),
                d + s,
                report.energy_uj()
            );
        }
        println!();
    }
    println!("Reconfigurability decreases left-to-right on Fig 1.1's spectrum:");
    println!("  optimized software -> ISA extensions -> microcoded Monte -> fixed-function Billie");
    println!("while the energy per operation falls by roughly an order of magnitude.");
}
