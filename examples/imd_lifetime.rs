//! Implantable-medical-device battery study — the motivating scenario of
//! the paper's introduction ("each extra Joule expended in computation
//! reduces the life of the device, and each surgical replacement of the
//! device endangers the life of the patient", §1.1).
//!
//! Given a small primary-cell energy budget for security, how many
//! authenticated telemetry sessions can each design point afford over
//! the device's life?
//!
//! ```text
//! cargo run --release --example imd_lifetime
//! ```

use ule_repro::core_api::{RunOptions, System, SystemConfig, Workload};
use ule_repro::curves::params::CurveId;
use ule_repro::pete::icache::CacheConfig;
use ule_repro::swlib::builder::Arch;

/// A pacemaker-class battery holds on the order of 1 Wh; assume a 0.5 %
/// lifetime allowance for cryptographic handshakes.
const SECURITY_BUDGET_J: f64 = 3600.0 * 0.005;

fn main() {
    println!("IMD security budget: {SECURITY_BUDGET_J:.0} J over the device's life");
    println!("(one session = one ECDSA signature + one verification)\n");
    println!(
        "{:8} {:14} {:>12} {:>14} {:>16}",
        "curve", "configuration", "uJ/session", "sessions", "sessions/day*"
    );
    let mut rows: Vec<(CurveId, Arch, Option<CacheConfig>)> = vec![
        (CurveId::P192, Arch::Baseline, None),
        (CurveId::P192, Arch::IsaExt, None),
        (CurveId::P192, Arch::IsaExt, Some(CacheConfig::best())),
        (CurveId::P192, Arch::Monte, None),
        (CurveId::K163, Arch::IsaExt, None),
        (CurveId::K163, Arch::Billie, None),
    ];
    // A forward-looking security level, as the paper's design-space
    // argument recommends planning for.
    rows.push((CurveId::P384, Arch::Monte, None));
    rows.push((CurveId::K409, Arch::Billie, None));
    for (curve, arch, cache) in rows {
        let mut cfg = SystemConfig::new(curve, arch);
        if let Some(c) = cache {
            cfg = cfg.with_icache(c);
        }
        let label = if cache.is_some() {
            format!("{} + I$", arch.name())
        } else {
            arch.name().to_string()
        };
        let report = System::new(cfg).run_with(RunOptions::new(Workload::SignVerify));
        let per_session_j = report.energy_uj() * 1e-6;
        let sessions = SECURITY_BUDGET_J / per_session_j;
        // 10-year device life.
        let per_day = sessions / (10.0 * 365.25);
        println!(
            "{:8} {:14} {:>12.1} {:>14.0} {:>16.1}",
            curve.name(),
            label,
            report.energy_uj(),
            sessions,
            per_day
        );
    }
    println!("\n* assuming a 10-year implant life");
    println!("The paper's conclusion in one table: hardware acceleration moves");
    println!("asymmetric cryptography from 'a few sessions a day' to 'practically free'.");
}
